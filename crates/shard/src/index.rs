//! The sharded index: per-shard subgraphs and indexes, plus the
//! boundary graph that makes cross-shard answers exact.

use std::sync::Arc;

use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_graph::{Graph, GraphBuilder, NodeId};

use crate::partition::ShardMap;

/// Sentinel for "unreachable" in the border distance matrix.
pub(crate) const UNREACHABLE: u64 = u64::MAX;

/// Build parameters for a [`ShardedIndex`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Requested shard count (clamped to [`crate::MAX_SHARDS`] and to
    /// the grid's cell count; see [`ShardMap::new`]).
    pub shards: usize,
    /// Certification cap: if the network has more border nodes than
    /// this, the `O(|B|²)` boundary matrix is not built, the index is
    /// *uncertified*, and every query falls back to the global index.
    /// Raising it trades build time and `8·|B|²` bytes of matrix for
    /// composed (per-shard) serving.
    pub max_border_nodes: usize,
    /// Build configuration for the per-shard (and, via
    /// [`ShardedIndex::build`], the global) AH indexes.
    pub build: BuildConfig,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            max_border_nodes: 1024,
            build: BuildConfig::default(),
        }
    }
}

/// One shard: its nodes, induced subgraph, local AH index, and its
/// slice of the boundary graph.
pub struct Shard {
    /// Global node ids owned by this shard, ascending; position is the
    /// node's *local* id in [`Shard::graph`] and [`Shard::index`].
    global_ids: Vec<NodeId>,
    /// The induced subgraph: this shard's nodes and every edge with
    /// both endpoints inside.
    graph: Graph,
    /// AH index over [`Shard::graph`]; `None` iff the shard is empty.
    /// Behind an `Arc` so a [`ShardedIndex::refresh`] can *reuse* the
    /// indexes of shards a weight delta did not touch instead of
    /// rebuilding them.
    index: Option<Arc<AhIndex>>,
    /// Indices (into [`ShardedIndex::border_nodes`]) of this shard's
    /// border nodes.
    borders: Vec<u32>,
    /// Border pairs `(u, q)` of this shard whose exact global distance
    /// beats the within-shard distance — the only pairs through which a
    /// same-shard query can improve by leaving the shard. Empty for
    /// most shards of a well-partitioned road network, which is what
    /// lets same-shard queries skip composition entirely.
    reentry: Vec<(u32, u32)>,
}

impl Shard {
    /// Global node ids owned by this shard (ascending; position =
    /// local id).
    pub fn global_ids(&self) -> &[NodeId] {
        &self.global_ids
    }

    /// The shard's induced subgraph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shard's AH index (`None` iff the shard owns no nodes).
    pub fn index(&self) -> Option<&AhIndex> {
        self.index.as_deref()
    }

    /// This shard's border nodes, as indices into
    /// [`ShardedIndex::border_nodes`].
    pub fn borders(&self) -> &[u32] {
        &self.borders
    }

    /// The shard's reentry pairs (see the field docs).
    pub fn reentry(&self) -> &[(u32, u32)] {
        &self.reentry
    }

    /// Number of nodes in the shard.
    pub fn num_nodes(&self) -> usize {
        self.global_ids.len()
    }
}

/// What a [`ShardedIndex::refresh`] rebuilt and what it reused.
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshReport {
    /// Shards whose index was rebuilt (they owned a touched node),
    /// ascending.
    pub rebuilt_shards: Vec<usize>,
    /// Shards whose existing index was reused unchanged.
    pub reused_shards: usize,
    /// Whether the refreshed index is certified (matrix rebuilt).
    pub certified: bool,
    /// Wall-clock seconds for the whole refresh (global rebuild,
    /// per-shard rebuilds, matrix).
    pub wall_secs: f64,
}

/// Aggregate facts about a sharded build (bench/CI telemetry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Effective shard count.
    pub shards: usize,
    /// Grid level the shard key is read at.
    pub level: u32,
    /// Shards that own at least one node.
    pub nonempty: usize,
    /// Nodes in the largest shard.
    pub largest: usize,
    /// Total border nodes.
    pub borders: usize,
    /// Whether the boundary matrix was built (composition serves; no
    /// global fallback needed for distance queries).
    pub certified: bool,
    /// Total reentry pairs across shards.
    pub reentry_pairs: usize,
    /// Bytes held by the boundary distance matrix.
    pub matrix_bytes: usize,
}

/// The region-sharded index: `K` per-shard AH indexes plus the boundary
/// graph, with the global AH index kept as the exactness fallback (and
/// the path-query engine).
///
/// Immutable once built, like every index in the workspace; queries run
/// through [`crate::ShardedQuery`], which holds the per-thread scratch.
pub struct ShardedIndex {
    global: Arc<AhIndex>,
    map: ShardMap,
    /// Node → shard.
    assignment: Vec<u16>,
    /// Node → local id within its shard.
    local_id: Vec<u32>,
    shards: Vec<Shard>,
    /// All border nodes (global ids, ascending). A node is a border
    /// node iff some incident edge crosses into another shard.
    border_nodes: Vec<NodeId>,
    /// `|B|²` exact global distances between border nodes, row-major by
    /// border index ([`UNREACHABLE`] encodes no path). Empty iff the
    /// build is uncertified.
    matrix: Vec<u64>,
    certified: bool,
}

impl ShardedIndex {
    /// Builds the global AH index and shards it. Convenience over
    /// [`ShardedIndex::from_global`] when no global index exists yet.
    ///
    /// # Panics
    /// Panics on an empty graph (there is nothing to partition).
    pub fn build(g: &Graph, cfg: &ShardConfig) -> ShardedIndex {
        let global = Arc::new(AhIndex::build(g, &cfg.build));
        ShardedIndex::from_global(g, global, cfg)
    }

    /// Shards the network around an existing global index (shared, not
    /// rebuilt): partitions by grid key, builds one AH index per
    /// non-empty shard, collects the border nodes, and — unless the
    /// border count exceeds `cfg.max_border_nodes` — precomputes the
    /// exact border-to-border distance matrix and each shard's reentry
    /// pairs.
    ///
    /// # Panics
    /// Panics if `global` does not index `g` (node counts differ) or if
    /// `g` is empty.
    pub fn from_global(g: &Graph, global: Arc<AhIndex>, cfg: &ShardConfig) -> ShardedIndex {
        assert_eq!(
            g.num_nodes(),
            global.num_nodes(),
            "global index does not match the graph"
        );
        assert!(g.num_nodes() > 0, "cannot shard an empty network");
        let skel = Skeleton::assemble(g, global.grid(), cfg.shards);
        let indexes: Vec<Option<Arc<AhIndex>>> = skel
            .shards
            .iter()
            .map(|(_, graph)| {
                (graph.num_nodes() > 0).then(|| Arc::new(AhIndex::build(graph, &cfg.build)))
            })
            .collect();
        let (certified, matrix, reentry) = certify(&skel, &global, &indexes, cfg);
        skel.finish(global, indexes, certified, matrix, reentry)
    }

    /// Rebuilds only what a weight delta invalidated, reusing the rest.
    ///
    /// `g` is the *patched* graph (same topology and coordinates as the
    /// one this index was built from — weight deltas never add or move
    /// nodes, so the grid partition is unchanged) and `touched` the
    /// delta's invalidation set (nodes incident to a changed edge, as
    /// reported by `ah_graph::DeltaApplied::touched`). The refresh is
    /// **staggered**: shards are rebuilt one at a time, and shards
    /// owning no touched node keep their existing index (shared via
    /// `Arc`, not copied). The global index is always rebuilt — any
    /// weight change can reroute arterial paths — and the boundary
    /// matrix and reentry pairs are recomputed **last**, from the new
    /// global index, so the returned index is internally consistent.
    ///
    /// Nothing about `self` changes; the caller publishes the returned
    /// index atomically (e.g. `ShardedServer::swap_index` in
    /// `ah_server`), which is what keeps service up for every region
    /// throughout: old generation serves until the new one — matrix
    /// included — is complete.
    ///
    /// # Panics
    /// Panics if `g`'s node count differs from this index's.
    pub fn refresh(&self, g: &Graph, touched: &[NodeId], cfg: &ShardConfig) -> (ShardedIndex, RefreshReport) {
        assert_eq!(
            g.num_nodes(),
            self.num_nodes(),
            "weight deltas preserve topology; refresh got a different network"
        );
        let t0 = std::time::Instant::now();
        let global = Arc::new(AhIndex::build(g, &cfg.build));
        let skel = Skeleton::assemble(g, global.grid(), self.num_shards());
        let mut dirty = vec![false; self.num_shards()];
        for &v in touched {
            dirty[skel.assignment[v as usize] as usize] = true;
        }
        let mut rebuilt_shards = Vec::new();
        let indexes: Vec<Option<Arc<AhIndex>>> = skel
            .shards
            .iter()
            .enumerate()
            .map(|(s, (_, graph))| {
                if graph.num_nodes() == 0 {
                    None
                } else if dirty[s] {
                    rebuilt_shards.push(s);
                    Some(Arc::new(AhIndex::build(graph, &cfg.build)))
                } else {
                    // Untouched region: the induced subgraph is
                    // weight-identical, so the old index is exact.
                    self.shards[s].index.clone()
                }
            })
            .collect();
        let (certified, matrix, reentry) = certify(&skel, &global, &indexes, cfg);
        let reused_shards = self.num_shards() - rebuilt_shards.len();
        let report = RefreshReport {
            rebuilt_shards,
            reused_shards,
            certified,
            wall_secs: t0.elapsed().as_secs_f64(),
        };
        (skel.finish(global, indexes, certified, matrix, reentry), report)
    }

    /// Reassembles a sharded index from its persisted components
    /// (snapshot loading). The partition skeleton — assignment, local
    /// ids, induced subgraphs, border nodes — is *recomputed* from the
    /// graph and the global index's grid (it is deterministic in
    /// `(grid, shards)` and cheap), then validated against the
    /// persisted pieces: shard count and per-shard node counts must
    /// match, the matrix must be `|B|²` exactly when certified (and
    /// absent when not), and every reentry pair must name two distinct
    /// borders of its own shard.
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_parts(
        g: &Graph,
        global: Arc<AhIndex>,
        shards: usize,
        indexes: Vec<Option<AhIndex>>,
        certified: bool,
        matrix: Vec<u64>,
        reentry: Vec<Vec<(u32, u32)>>,
    ) -> Result<ShardedIndex, &'static str> {
        if g.num_nodes() != global.num_nodes() {
            return Err("global index does not match the graph");
        }
        if g.num_nodes() == 0 {
            return Err("cannot shard an empty network");
        }
        let skel = Skeleton::assemble(g, global.grid(), shards);
        let k = skel.map.num_shards();
        if k != shards || indexes.len() != k || reentry.len() != k {
            return Err("shard count disagrees with the grid partition");
        }
        for (s, (_, graph)) in skel.shards.iter().enumerate() {
            match &indexes[s] {
                Some(idx) if idx.num_nodes() == graph.num_nodes() => {}
                None if graph.num_nodes() == 0 => {}
                _ => return Err("per-shard index does not match its shard's node count"),
            }
        }
        let b = skel.border_nodes.len();
        if certified {
            if matrix.len() != b * b {
                return Err("boundary matrix size is not |borders|^2");
            }
        } else if !matrix.is_empty() || reentry.iter().any(|r| !r.is_empty()) {
            return Err("uncertified index cannot carry a matrix or reentry pairs");
        }
        for (s, pairs) in reentry.iter().enumerate() {
            for &(bi, bj) in pairs {
                let in_shard = |i: u32| skel.shard_borders[s].contains(&i);
                if bi == bj || !in_shard(bi) || !in_shard(bj) {
                    return Err("reentry pair names a border outside its shard");
                }
            }
        }
        let indexes = indexes.into_iter().map(|i| i.map(Arc::new)).collect();
        Ok(skel.finish(global, indexes, certified, matrix, reentry))
    }

    /// The global AH index (fallback and path engine).
    pub fn global(&self) -> &Arc<AhIndex> {
        &self.global
    }

    /// Number of nodes of the underlying network.
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// The effective shard count.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The grid-keyed partition.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The shard owning node `v`.
    #[inline]
    pub fn shard_of(&self, v: NodeId) -> u16 {
        self.assignment[v as usize]
    }

    /// `v`'s local id inside its shard.
    #[inline]
    pub fn local_id(&self, v: NodeId) -> NodeId {
        self.local_id[v as usize]
    }

    /// Shard number `s`.
    pub fn shard(&self, s: usize) -> &Shard {
        &self.shards[s]
    }

    /// All border nodes (global ids, ascending by id).
    pub fn border_nodes(&self) -> &[NodeId] {
        &self.border_nodes
    }

    /// Whether composed serving is certified (the boundary matrix was
    /// built). Uncertified indexes answer every query from the global
    /// index.
    pub fn certified(&self) -> bool {
        self.certified
    }

    /// Exact global distance between border `i` and border `j`, or
    /// `None` if unreachable.
    ///
    /// # Panics
    /// Panics if the index is uncertified or an index is out of range.
    #[inline]
    pub fn border_distance(&self, i: u32, j: u32) -> Option<u64> {
        let b = self.border_nodes.len();
        let d = self.matrix[i as usize * b + j as usize];
        (d != UNREACHABLE).then_some(d)
    }

    /// The raw boundary matrix (row-major, `u64::MAX` = unreachable;
    /// empty when uncertified). Serialization hook for `ah_store`.
    pub fn matrix(&self) -> &[u64] {
        &self.matrix
    }

    /// Telemetry snapshot.
    pub fn stats(&self) -> ShardStats {
        ShardStats {
            shards: self.shards.len(),
            level: self.map.level(),
            nonempty: self.shards.iter().filter(|s| s.num_nodes() > 0).count(),
            largest: self.shards.iter().map(Shard::num_nodes).max().unwrap_or(0),
            borders: self.border_nodes.len(),
            certified: self.certified,
            reentry_pairs: self.shards.iter().map(|s| s.reentry.len()).sum(),
            matrix_bytes: self.matrix.len() * std::mem::size_of::<u64>(),
        }
    }
}

/// The deterministic partition skeleton shared by the build and load
/// paths: everything derivable from `(graph, grid, shards)` alone.
struct Skeleton {
    map: ShardMap,
    assignment: Vec<u16>,
    local_id: Vec<u32>,
    /// Per shard: `(global_ids, induced subgraph)`.
    shards: Vec<(Vec<NodeId>, Graph)>,
    border_nodes: Vec<NodeId>,
    /// Per shard: indices into `border_nodes`.
    shard_borders: Vec<Vec<u32>>,
}

impl Skeleton {
    fn assemble(g: &Graph, grid: &ah_grid::GridHierarchy, shards: usize) -> Skeleton {
        let n = g.num_nodes();
        let map = ShardMap::new(grid, shards);
        let k = map.num_shards();
        let mut assignment = vec![0u16; n];
        let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for v in g.node_ids() {
            let s = map.shard_of(grid, g.coord(v));
            assignment[v as usize] = s;
            members[s as usize].push(v);
        }
        let mut local_id = vec![0u32; n];
        for nodes in &members {
            for (i, &v) in nodes.iter().enumerate() {
                local_id[v as usize] = i as u32;
            }
        }
        let shards: Vec<(Vec<NodeId>, Graph)> = members
            .into_iter()
            .map(|nodes| {
                let mut b = GraphBuilder::with_capacity(nodes.len(), 0);
                for &v in &nodes {
                    b.add_node(g.coord(v));
                }
                for &v in &nodes {
                    for a in g.out_edges(v) {
                        if assignment[a.head as usize] == assignment[v as usize] {
                            b.add_edge(local_id[v as usize], local_id[a.head as usize], a.weight);
                        }
                    }
                }
                let graph = b.build();
                (nodes, graph)
            })
            .collect();

        let mut border_nodes = Vec::new();
        let mut shard_borders: Vec<Vec<u32>> = vec![Vec::new(); k];
        for v in g.node_ids() {
            let s = assignment[v as usize];
            let crosses = g
                .out_edges(v)
                .iter()
                .chain(g.in_edges(v))
                .any(|a| assignment[a.head as usize] != s);
            if crosses {
                shard_borders[s as usize].push(border_nodes.len() as u32);
                border_nodes.push(v);
            }
        }
        Skeleton {
            map,
            assignment,
            local_id,
            shards,
            border_nodes,
            shard_borders,
        }
    }

    fn finish(
        self,
        global: Arc<AhIndex>,
        indexes: Vec<Option<Arc<AhIndex>>>,
        certified: bool,
        matrix: Vec<u64>,
        reentry: Vec<Vec<(u32, u32)>>,
    ) -> ShardedIndex {
        let shards = self
            .shards
            .into_iter()
            .zip(indexes)
            .zip(self.shard_borders)
            .zip(reentry)
            .map(|((((global_ids, graph), index), borders), reentry)| Shard {
                global_ids,
                graph,
                index,
                borders,
                reentry,
            })
            .collect();
        ShardedIndex {
            global,
            map: self.map,
            assignment: self.assignment,
            local_id: self.local_id,
            shards,
            border_nodes: self.border_nodes,
            matrix,
            certified,
        }
    }
}

/// The certification pass shared by [`ShardedIndex::from_global`] and
/// [`ShardedIndex::refresh`]: the exact global border-to-border closure
/// of the boundary graph plus each shard's reentry pairs, or an
/// uncertified `(false, empty, empty-per-shard)` when the border count
/// exceeds the cap. Runs *after* every per-shard index exists, so a
/// refresh publishes matrix and shard indexes from the same generation.
fn certify(
    skel: &Skeleton,
    global: &Arc<AhIndex>,
    indexes: &[Option<Arc<AhIndex>>],
    cfg: &ShardConfig,
) -> (bool, Vec<u64>, Vec<Vec<(u32, u32)>>) {
    let b = skel.border_nodes.len();
    let certified = b <= cfg.max_border_nodes;
    let mut matrix = Vec::new();
    let mut reentry: Vec<Vec<(u32, u32)>> = vec![Vec::new(); skel.map.num_shards()];
    if certified {
        // Exact global border-to-border closure of the boundary
        // graph, computed with the global index (docs/SHARDING.md
        // explains why this equals the boundary-graph shortest
        // paths it stands in for).
        let mut gq = AhQuery::new();
        matrix = vec![UNREACHABLE; b * b];
        for (i, &u) in skel.border_nodes.iter().enumerate() {
            for (j, &q) in skel.border_nodes.iter().enumerate() {
                if let Some(d) = gq.distance(global, u, q) {
                    matrix[i * b + j] = d;
                }
            }
        }
        // Reentry pairs: same-shard border pairs whose global
        // distance beats the within-shard one — the only way a
        // same-shard query can improve by leaving its shard.
        let mut lq = AhQuery::new();
        for s in 0..skel.map.num_shards() {
            let Some(idx) = indexes[s].as_deref() else { continue };
            for &bi in &skel.shard_borders[s] {
                for &bj in &skel.shard_borders[s] {
                    if bi == bj {
                        continue;
                    }
                    let u = skel.border_nodes[bi as usize];
                    let q = skel.border_nodes[bj as usize];
                    let within = lq
                        .distance(idx, skel.local_id[u as usize], skel.local_id[q as usize])
                        .unwrap_or(UNREACHABLE);
                    if matrix[bi as usize * b + bj as usize] < within {
                        reentry[s].push((bi, bj));
                    }
                }
            }
        }
    }
    (certified, matrix, reentry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharded(k: usize) -> (Graph, ShardedIndex) {
        let g = ah_data::fixtures::lattice(8, 8, 12);
        let idx = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: k,
                ..Default::default()
            },
        );
        (g, idx)
    }

    #[test]
    fn partition_covers_every_node_exactly_once() {
        let (g, idx) = sharded(4);
        assert_eq!(idx.num_shards(), 4);
        let mut seen = vec![false; g.num_nodes()];
        for s in 0..idx.num_shards() {
            let shard = idx.shard(s);
            for (local, &v) in shard.global_ids().iter().enumerate() {
                assert_eq!(idx.shard_of(v) as usize, s);
                assert_eq!(idx.local_id(v) as usize, local);
                assert!(!seen[v as usize], "node {v} in two shards");
                seen[v as usize] = true;
            }
            if let Some(i) = shard.index() {
                assert_eq!(i.num_nodes(), shard.num_nodes());
            }
        }
        assert!(seen.iter().all(|&x| x), "every node belongs to a shard");
    }

    #[test]
    fn borders_are_exactly_the_crossing_endpoints() {
        let (g, idx) = sharded(4);
        for v in g.node_ids() {
            let crosses = g
                .out_edges(v)
                .iter()
                .chain(g.in_edges(v))
                .any(|a| idx.shard_of(a.head) != idx.shard_of(v));
            assert_eq!(idx.border_nodes().contains(&v), crosses, "node {v}");
        }
        // A 4-banded lattice has borders and a certified matrix.
        assert!(!idx.border_nodes().is_empty());
        assert!(idx.certified());
        let b = idx.border_nodes().len();
        assert_eq!(idx.matrix().len(), b * b);
        for i in 0..b as u32 {
            assert_eq!(idx.border_distance(i, i), Some(0));
        }
    }

    #[test]
    fn single_shard_is_trivially_certified_with_no_borders() {
        let (_, idx) = sharded(1);
        assert_eq!(idx.num_shards(), 1);
        assert!(idx.border_nodes().is_empty());
        assert!(idx.certified());
        assert!(idx.shard(0).reentry().is_empty());
    }

    #[test]
    fn border_cap_uncertifies() {
        let g = ah_data::fixtures::lattice(8, 8, 12);
        let idx = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: 4,
                max_border_nodes: 0,
                ..Default::default()
            },
        );
        assert!(!idx.certified());
        assert!(idx.matrix().is_empty());
    }

    #[test]
    fn refresh_reuses_untouched_shards_and_matches_scratch_build() {
        use ah_graph::{WeightChange, WeightDelta};
        let (g, idx) = sharded(4);
        // Re-weight a couple of intra-shard edges near node 0 (shard of
        // the lattice's corner) and close one.
        let delta = WeightDelta::new(
            &g,
            [
                WeightChange::new(0, 1, 40),
                WeightChange::new(1, 0, 40),
                WeightChange::close(8, 9),
            ],
        )
        .unwrap();
        let applied = delta.apply(&g).unwrap();
        let cfg = ShardConfig {
            shards: 4,
            ..Default::default()
        };
        let (fresh, report) = idx.refresh(&applied.graph, &applied.touched, &cfg);

        // Some shards were untouched and their indexes reused by
        // pointer, not rebuilt.
        assert!(report.reused_shards >= 1, "{report:?}");
        assert!(!report.rebuilt_shards.is_empty(), "{report:?}");
        assert_eq!(report.reused_shards + report.rebuilt_shards.len(), 4);
        for s in 0..4 {
            let reused = !report.rebuilt_shards.contains(&s);
            if reused {
                if let (Some(old), Some(new)) = (&idx.shards[s].index, &fresh.shards[s].index) {
                    assert!(Arc::ptr_eq(old, new), "shard {s} should be shared");
                }
            }
        }

        // The refreshed index answers bit-equal to a from-scratch build
        // on the patched graph.
        let scratch = ShardedIndex::build(&applied.graph, &cfg);
        assert_eq!(fresh.matrix(), scratch.matrix(), "boundary matrix differs");
        assert_eq!(fresh.certified(), scratch.certified());
        let mut qa = crate::ShardedQuery::new();
        let mut qb = crate::ShardedQuery::new();
        let n = g.num_nodes() as u32;
        for i in 0..200u32 {
            let (s, t) = ((i * 7 + 3) % n, (i * 13 + 5) % n);
            assert_eq!(
                qa.distance(&fresh, s, t),
                qb.distance(&scratch, s, t),
                "({s},{t})"
            );
        }
    }

    #[test]
    fn refresh_with_cross_shard_change_refreshes_the_matrix() {
        use ah_graph::{WeightChange, WeightDelta};
        let (g, idx) = sharded(4);
        // Find an edge crossing shards and re-weight it: no induced
        // subgraph changes, but the boundary matrix must.
        let (u, v, w) = g
            .node_ids()
            .flat_map(|u| g.out_edges(u).iter().map(move |a| (u, a.head, a.weight)))
            .find(|&(u, v, _)| idx.shard_of(u) != idx.shard_of(v))
            .expect("4-way lattice split has crossing edges");
        let delta = WeightDelta::new(&g, [WeightChange::new(u, v, w + 70)]).unwrap();
        let applied = delta.apply(&g).unwrap();
        let cfg = ShardConfig {
            shards: 4,
            ..Default::default()
        };
        let (fresh, _) = idx.refresh(&applied.graph, &applied.touched, &cfg);
        let scratch = ShardedIndex::build(&applied.graph, &cfg);
        assert_eq!(fresh.matrix(), scratch.matrix());
        assert_ne!(fresh.matrix(), idx.matrix(), "matrix must have moved");
    }

    #[test]
    fn from_raw_parts_roundtrip_and_validation() {
        let (g, idx) = sharded(4);
        let indexes: Vec<Option<AhIndex>> = (0..idx.num_shards())
            .map(|s| {
                idx.shard(s)
                    .index()
                    .map(|_| AhIndex::build(idx.shard(s).graph(), &BuildConfig::default()))
            })
            .collect();
        let reentry: Vec<Vec<(u32, u32)>> = (0..idx.num_shards())
            .map(|s| idx.shard(s).reentry().to_vec())
            .collect();
        let re = ShardedIndex::from_raw_parts(
            &g,
            idx.global().clone(),
            idx.num_shards(),
            indexes,
            idx.certified(),
            idx.matrix().to_vec(),
            reentry.clone(),
        )
        .unwrap();
        assert_eq!(re.border_nodes(), idx.border_nodes());
        assert_eq!(re.stats(), idx.stats());

        // Wrong shard count.
        assert!(ShardedIndex::from_raw_parts(
            &g,
            idx.global().clone(),
            idx.num_shards() + 1,
            vec![],
            false,
            vec![],
            vec![],
        )
        .is_err());
        // Certified but truncated matrix.
        assert!(ShardedIndex::from_raw_parts(
            &g,
            idx.global().clone(),
            idx.num_shards(),
            (0..idx.num_shards())
                .map(|s| idx.shard(s).index().map(|_| AhIndex::build(idx.shard(s).graph(), &BuildConfig::default())))
                .collect(),
            true,
            vec![0; 3],
            reentry,
        )
        .is_err());
    }
}
