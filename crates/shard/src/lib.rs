//! **Region sharding** — partition the road network into `K` spatial
//! shards and answer queries per shard, composing cross-shard answers
//! through boundary nodes.
//!
//! The ROADMAP's serving north star ("heavy traffic from millions of
//! users") eventually outgrows one index on one machine. The paper's
//! arterial hierarchy is built on a spatial grid decomposition
//! ([`ah_grid::GridHierarchy`]), which hands us a shard key for free: a
//! node's grid cell at a fixed level determines its shard
//! ([`ShardMap`]). Partition-with-boundary-vertex composition is the
//! same device the experimental-evaluation literature (Wu et al., VLDB
//! 2012) credits for scaling hierarchical methods to large networks.
//!
//! Three pieces compose:
//!
//! * [`ShardMap`] — the grid-keyed partition: deterministic cell →
//!   shard assignment at one grid level, so routing a query to its
//!   shard is two integer divisions.
//! * [`ShardedIndex`] — per shard, the induced subgraph and its own
//!   [`ah_core::AhIndex`]; across shards, the *boundary graph*: every
//!   border node (a node with an edge into another shard) plus the
//!   exact global border-to-border distance matrix precomputed at build
//!   time, and the per-shard *reentry pairs* that certify when a
//!   same-shard query can be answered purely locally.
//! * [`ShardedQuery`] — per-thread scratch that answers distance
//!   queries **exactly**: same-shard queries run on the shard index
//!   (plus reentry composition when leaving the shard could be
//!   shorter), cross-shard queries compose
//!   `source→border + border→border + border→target`, and anything the
//!   composition cannot certify (uncertified builds, path queries)
//!   falls back to the global index.
//!
//! The exactness argument for composed distances is spelled out in
//! `docs/SHARDING.md`; the randomized identity suite
//! (`tests/tests/sharded_identity.rs`) holds the composition to
//! bit-equality with the unsharded [`ah_core::AhQuery`] on Q1–Q10
//! workloads.
//!
//! ```
//! use ah_shard::{ShardConfig, ShardedIndex, ShardedQuery};
//!
//! let g = ah_data::fixtures::lattice(8, 8, 12);
//! let idx = ShardedIndex::build(&g, &ShardConfig { shards: 4, ..Default::default() });
//! let mut q = ShardedQuery::new();
//! let d = q.distance(&idx, 0, 63);
//! assert_eq!(d, ah_search::dijkstra_distance(&g, 0, 63).map(|d| d.length));
//! ```

mod index;
mod partition;
mod query;

pub use index::{RefreshReport, Shard, ShardConfig, ShardStats, ShardedIndex};
pub use partition::{ShardMap, MAX_SHARDS};
pub use query::{Route, ShardedQuery};
