//! The grid-keyed partition: which shard owns which region of the plane.

use ah_graph::Point;
use ah_grid::GridHierarchy;

/// Upper bound on the shard count. Keeps the per-shard snapshot section
/// tags (`shard000` … `shard255`, see `ah_store`) well-formed and the
/// assignment array at `u16`.
pub const MAX_SHARDS: usize = 256;

/// Deterministic node → shard assignment derived from the grid
/// hierarchy.
///
/// One grid level `ℓ` is chosen — the coarsest whose cell count is at
/// least the requested shard count — and its cells are split into `K`
/// contiguous row-major bands: cell `(x, y)` belongs to shard
/// `⌊rank·K / cells⌋` with `rank = y·per_axis + x`. Contiguous bands keep
/// shards spatially coherent (neighbouring nodes usually share a shard,
/// so most traffic is same-shard), and the whole map is three integers —
/// rebuilding it from `(grid, K)` after a snapshot load is free and
/// cannot drift from what the build used.
///
/// The effective shard count can be lower than requested: it is clamped
/// to [`MAX_SHARDS`] and to the chosen level's cell count (a tiny
/// network's grid may not have `K` cells anywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    level: u32,
    per_axis: u64,
    shards: u32,
}

impl ShardMap {
    /// Derives the partition for `shards` shards over `grid`.
    pub fn new(grid: &GridHierarchy, shards: usize) -> ShardMap {
        let requested = shards.clamp(1, MAX_SHARDS) as u64;
        let cells_at = |l: u32| {
            let pa = grid.cells_per_axis(l) as u64;
            pa * pa
        };
        let mut level = grid.levels();
        while level > 1 && cells_at(level) < requested {
            level -= 1;
        }
        ShardMap {
            level,
            per_axis: grid.cells_per_axis(level) as u64,
            shards: requested.min(cells_at(level)) as u32,
        }
    }

    /// The effective shard count (after clamping).
    #[inline]
    pub fn num_shards(&self) -> usize {
        self.shards as usize
    }

    /// The grid level the shard key is read at.
    #[inline]
    pub fn level(&self) -> u32 {
        self.level
    }

    /// The shard owning point `p`. Always `< num_shards()`; points
    /// outside the fitted grid clamp to the boundary cells exactly as
    /// [`GridHierarchy::cell_of`] does.
    pub fn shard_of(&self, grid: &GridHierarchy, p: Point) -> u16 {
        let c = grid.cell_of(self.level, p);
        let rank = c.y as u64 * self.per_axis + c.x as u64;
        let cells = self.per_axis * self.per_axis;
        ((rank * self.shards as u64) / cells) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_grid::MAX_LEVELS;

    fn grid() -> GridHierarchy {
        let bb = ah_graph::BoundingBox::of([Point::new(0, 0), Point::new(255, 255)]);
        GridHierarchy::fit(bb, MAX_LEVELS)
    }

    #[test]
    fn covers_exactly_k_shards_for_small_k() {
        let g = grid();
        for k in [1usize, 2, 3, 4, 8, 16] {
            let m = ShardMap::new(&g, k);
            assert_eq!(m.num_shards(), k, "k = {k}");
            let mut seen = std::collections::HashSet::new();
            for x in 0..=255 {
                for y in 0..=255 {
                    let s = m.shard_of(&g, Point::new(x, y));
                    assert!((s as usize) < k);
                    seen.insert(s);
                }
            }
            assert_eq!(seen.len(), k, "every shard owns territory for k = {k}");
        }
    }

    #[test]
    fn descends_levels_for_large_k() {
        let g = grid();
        // R_h has 16 cells, so 64 shards need a finer level.
        let m = ShardMap::new(&g, 64);
        assert_eq!(m.num_shards(), 64);
        assert!(m.level() < g.levels());
    }

    #[test]
    fn clamps_to_available_cells_and_max() {
        let tiny = GridHierarchy::fit_to_points(&[Point::new(0, 0), Point::new(3, 3)], 1);
        // h = 1: the finest (and only usable) grid has at most 16 cells.
        let m = ShardMap::new(&tiny, 500);
        assert!(m.num_shards() <= 16);
        let m0 = ShardMap::new(&tiny, 0);
        assert_eq!(m0.num_shards(), 1);
    }

    #[test]
    fn assignment_is_deterministic_and_banded() {
        let g = grid();
        let m = ShardMap::new(&g, 4);
        assert_eq!(m, ShardMap::new(&g, 4));
        // Row-major bands: moving north (increasing y) never decreases
        // the shard id for a fixed x.
        for x in [0, 100, 255] {
            let mut last = 0u16;
            for y in 0..=255 {
                let s = m.shard_of(&g, Point::new(x, y));
                assert!(s >= last, "bands must be monotone in y");
                last = s;
            }
        }
    }
}
