//! Exact distance queries over a [`ShardedIndex`].
//!
//! The composition rule (proved exact in `docs/SHARDING.md`): a
//! shortest path from `s` (shard `A`) to `t` (shard `B ≠ A`) leaves `A`
//! for the first time at some border node `u` of `A` and enters `B` for
//! the last time at some border node `q` of `B`; the prefix `s → u`
//! lies entirely inside `A` and the suffix `q → t` entirely inside `B`.
//! Hence
//!
//! ```text
//! d(s, t) = min over u ∈ borders(A), q ∈ borders(B) of
//!           d_A(s, u) + D(u, q) + d_B(q, t)
//! ```
//!
//! with `d_A`/`d_B` within-shard distances and `D` the precomputed
//! exact global border-to-border matrix. Same-shard queries use the
//! shard's own AH index, composing only through the shard's *reentry
//! pairs* (border pairs whose global distance beats the within-shard
//! one) — for most shards there are none and the query is purely local.
//!
//! The within-shard border fan-outs `d_A(s, ·)` and `d_B(·, t)` are one
//! forward and one backward Dijkstra sweep over the (small) shard
//! subgraph, reusing [`ah_search::DijkstraDriver`]'s stamped state.

use ah_core::AhQuery;
use ah_graph::{NodeId, Path};
use ah_obs::CostCounters;
use ah_search::{Direction, DijkstraDriver, SearchOptions};

use crate::index::{ShardedIndex, UNREACHABLE};

/// How the last query was answered (telemetry/tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Same-shard, answered by the shard's AH index alone.
    Local,
    /// Composed through the boundary graph.
    Composed,
    /// Answered by the global index (uncertified build, or a path
    /// query).
    Fallback,
}

/// Reusable sharded query state. Create once per thread, run many
/// queries; the scratch resizes to whichever shard (or the global
/// index) a query touches.
pub struct ShardedQuery {
    global: AhQuery,
    local: AhQuery,
    fwd: DijkstraDriver,
    bwd: DijkstraDriver,
    da: Vec<u64>,
    db: Vec<u64>,
    /// How the most recent query was routed.
    pub last_route: Route,
    /// Routing-level cost (shard hops, boundary-matrix lookups); the
    /// sub-engines keep their own tallies until [`Self::take_cost`].
    cost: CostCounters,
}

impl Default for ShardedQuery {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedQuery {
    /// Creates the per-thread query scratch.
    pub fn new() -> Self {
        ShardedQuery {
            global: AhQuery::new(),
            local: AhQuery::new(),
            fwd: DijkstraDriver::new(),
            bwd: DijkstraDriver::new(),
            da: Vec::new(),
            db: Vec::new(),
            last_route: Route::Local,
            cost: CostCounters::default(),
        }
    }

    /// Drains the accumulated cost tally: the routing layer's shard hops
    /// and boundary-matrix lookups merged with every sub-engine's counts
    /// (global/local AH searches, border fan-out sweeps).
    pub fn take_cost(&mut self) -> CostCounters {
        let mut c = self.cost.take();
        c.merge(&self.global.take_cost());
        c.merge(&self.local.take_cost());
        c.merge(&self.fwd.take_cost());
        c.merge(&self.bwd.take_cost());
        c
    }

    /// Network distance from `s` to `t`, or `None` if unreachable.
    /// Exact: bit-equal to the global [`AhQuery`] answer.
    pub fn distance(&mut self, idx: &ShardedIndex, s: NodeId, t: NodeId) -> Option<u64> {
        if !idx.certified() {
            self.last_route = Route::Fallback;
            return self.global.distance(idx.global(), s, t);
        }
        let a = idx.shard_of(s) as usize;
        let b = idx.shard_of(t) as usize;
        if a == b {
            self.cost.shard_hops += 1;
            self.same_shard(idx, a, s, t)
        } else {
            self.cost.shard_hops += 2;
            self.cross_shard(idx, a, b, s, t)
        }
    }

    /// Shortest path from `s` to `t` in the original network. Paths are
    /// served by the global index: composing an exact *path* across
    /// shards would need the boundary matrix to carry via-nodes, which
    /// the snapshot layout deliberately leaves out (distances dominate
    /// serving traffic; see docs/SHARDING.md § tuning).
    pub fn path(&mut self, idx: &ShardedIndex, s: NodeId, t: NodeId) -> Option<Path> {
        self.last_route = Route::Fallback;
        self.global.path(idx.global(), s, t)
    }

    fn same_shard(&mut self, idx: &ShardedIndex, a: usize, s: NodeId, t: NodeId) -> Option<u64> {
        let shard = idx.shard(a);
        let aidx = shard.index().expect("s belongs to this shard, so it is non-empty");
        let d_loc_full = self.local.distance_full(aidx, idx.local_id(s), idx.local_id(t));
        let d_loc = d_loc_full.map(|d| d.length);
        if shard.reentry().is_empty() {
            self.last_route = Route::Local;
            return d_loc;
        }
        // Leaving the shard can be shorter: sweep once in each
        // direction and try every reentry pair. The local distance is a
        // lossless sweep bound — an improving pair (u, q) needs both
        // d_A(s, u) and d_A(q, t) strictly below it (the middle leg is
        // non-negative), and Dijkstra settles every node below the
        // bound before stopping, so the winning pair's legs are exact;
        // unsettled nodes contribute only safe overestimates.
        self.last_route = Route::Composed;
        let bound = d_loc_full.unwrap_or(ah_search::INFINITY);
        let opts = SearchOptions {
            bound,
            ..SearchOptions::default()
        };
        self.fwd.run(shard.graph(), idx.local_id(s), &opts, |_| true);
        let bopts = SearchOptions {
            direction: Direction::Backward,
            bound,
            ..SearchOptions::default()
        };
        self.bwd.run(shard.graph(), idx.local_id(t), &bopts, |_| true);
        let mut best = d_loc.unwrap_or(UNREACHABLE);
        for &(bi, bj) in shard.reentry() {
            let u = idx.border_nodes()[bi as usize];
            let q = idx.border_nodes()[bj as usize];
            let du = self.fwd.dist(idx.local_id(u));
            let dq = self.bwd.dist(idx.local_id(q));
            if du.is_infinite() || dq.is_infinite() {
                continue;
            }
            self.cost.boundary_lookups += 1;
            if let Some(mid) = idx.border_distance(bi, bj) {
                best = best.min(du.length + mid + dq.length);
            }
        }
        (best != UNREACHABLE).then_some(best)
    }

    fn cross_shard(
        &mut self,
        idx: &ShardedIndex,
        a: usize,
        b: usize,
        s: NodeId,
        t: NodeId,
    ) -> Option<u64> {
        self.last_route = Route::Composed;
        let sa = idx.shard(a);
        let sb = idx.shard(b);
        // d_A(s, u) for every border u of A: one forward sweep.
        let opts = SearchOptions::default();
        self.fwd.run(sa.graph(), idx.local_id(s), &opts, |_| true);
        self.da.clear();
        self.da.extend(sa.borders().iter().map(|&bi| {
            let d = self.fwd.dist(idx.local_id(idx.border_nodes()[bi as usize]));
            if d.is_infinite() {
                UNREACHABLE
            } else {
                d.length
            }
        }));
        // d_B(q, t) for every border q of B: one backward sweep.
        let bopts = SearchOptions {
            direction: Direction::Backward,
            ..SearchOptions::default()
        };
        self.bwd.run(sb.graph(), idx.local_id(t), &bopts, |_| true);
        self.db.clear();
        self.db.extend(sb.borders().iter().map(|&bj| {
            let d = self.bwd.dist(idx.local_id(idx.border_nodes()[bj as usize]));
            if d.is_infinite() {
                UNREACHABLE
            } else {
                d.length
            }
        }));

        let mut best = UNREACHABLE;
        for (ui, &bi) in sa.borders().iter().enumerate() {
            let du = self.da[ui];
            if du == UNREACHABLE || du >= best {
                continue;
            }
            for (qi, &bj) in sb.borders().iter().enumerate() {
                let dq = self.db[qi];
                if dq == UNREACHABLE {
                    continue;
                }
                self.cost.boundary_lookups += 1;
                if let Some(mid) = idx.border_distance(bi, bj) {
                    best = best.min(du + mid + dq);
                }
            }
        }
        (best != UNREACHABLE).then_some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{ShardConfig, ShardedIndex};
    use ah_graph::{Graph, GraphBuilder, Point};
    use ah_search::dijkstra_distance;

    fn exact_everywhere(g: &Graph, idx: &ShardedIndex) {
        let mut q = ShardedQuery::new();
        for s in g.node_ids() {
            for t in g.node_ids() {
                let want = dijkstra_distance(g, s, t).map(|d| d.length);
                assert_eq!(q.distance(idx, s, t), want, "({s},{t})");
            }
        }
    }

    #[test]
    fn lattice_identity_all_pairs_four_shards() {
        let g = ah_data::fixtures::lattice(8, 8, 12);
        let idx = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: 4,
                ..Default::default()
            },
        );
        // The banded lattice has genuine cross-shard pairs.
        assert!(g
            .node_ids()
            .any(|v| idx.shard_of(v) != idx.shard_of(0)));
        exact_everywhere(&g, &idx);
    }

    #[test]
    fn uncertified_falls_back_and_stays_exact() {
        let g = ah_data::fixtures::lattice(6, 6, 10);
        let idx = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: 4,
                max_border_nodes: 0,
                ..Default::default()
            },
        );
        assert!(!idx.certified());
        let mut q = ShardedQuery::new();
        let d = q.distance(&idx, 0, 35);
        assert_eq!(q.last_route, Route::Fallback);
        assert_eq!(d, dijkstra_distance(&g, 0, 35).map(|x| x.length));
        exact_everywhere(&g, &idx);
    }

    /// A "U" network: two long east–west chains, one in the south band
    /// and one in the north band, joined at both ends. The south chain
    /// is heavy, the north chain light, so the shortest south→south
    /// path detours through the north shard — the reentry-pair
    /// machinery must catch it.
    fn u_network(south_weight: u32, with_south_chain: bool) -> Graph {
        let mut b = GraphBuilder::new();
        let cols = 8;
        for x in 0..cols {
            b.add_node(Point::new(x * 32, 0)); // south: ids 0..8
        }
        for x in 0..cols {
            b.add_node(Point::new(x * 32, 255)); // north: ids 8..16
        }
        for x in 0..cols - 1 {
            if with_south_chain {
                b.add_bidirectional_edge(x as u32, x as u32 + 1, south_weight);
            }
            b.add_bidirectional_edge(8 + x as u32, 8 + x as u32 + 1, 1);
        }
        // Vertical joins at both ends.
        b.add_bidirectional_edge(0, 8, 1);
        b.add_bidirectional_edge(cols as u32 - 1, 8 + cols as u32 - 1, 1);
        b.build()
    }

    #[test]
    fn same_shard_query_detours_through_other_shard() {
        let g = u_network(1000, true);
        let idx = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: 2,
                ..Default::default()
            },
        );
        assert_eq!(idx.shard_of(0), idx.shard_of(7), "south chain shares a shard");
        assert_ne!(idx.shard_of(0), idx.shard_of(8), "bands are split");
        // The south shard must have discovered reentry pairs — its
        // direct chain is beatable via the north band.
        assert!(!idx.shard(idx.shard_of(0) as usize).reentry().is_empty());
        let mut q = ShardedQuery::new();
        let d = q.distance(&idx, 0, 7);
        assert_eq!(q.last_route, Route::Composed);
        assert_eq!(d, dijkstra_distance(&g, 0, 7).map(|x| x.length));
        assert_eq!(d, Some(1 + 7 + 1)); // down, across the light chain, up
        exact_everywhere(&g, &idx);
    }

    #[test]
    fn same_shard_pair_connected_only_through_other_shard() {
        // Drop the south chain entirely: south nodes are disconnected
        // within their shard and reachable only via the north band.
        let g = u_network(0, false);
        let idx = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: 2,
                ..Default::default()
            },
        );
        let mut q = ShardedQuery::new();
        let d = q.distance(&idx, 0, 7);
        assert_eq!(d, dijkstra_distance(&g, 0, 7).map(|x| x.length));
        assert!(d.is_some(), "reachable through the other shard");
        exact_everywhere(&g, &idx);
    }

    #[test]
    fn empty_shards_are_harmless() {
        // All nodes hug the south edge; with 4 bands the northern
        // shards own no nodes.
        let mut b = GraphBuilder::new();
        for x in 0..6 {
            b.add_node(Point::new(x * 50, x as i32 % 2));
        }
        for x in 0..5 {
            b.add_bidirectional_edge(x, x + 1, 3);
        }
        let g = b.build();
        let idx = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: 4,
                ..Default::default()
            },
        );
        assert!(idx.stats().nonempty < idx.num_shards() || idx.num_shards() == 1);
        exact_everywhere(&g, &idx);
    }

    #[test]
    fn one_way_cross_shard_unreachability_is_preserved() {
        // A one-way edge from south to north only: north → south is
        // unreachable, and the composition must say so.
        let mut b = GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(0, 255));
        b.add_edge(0, 1, 5);
        let g = b.build();
        let idx = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: 2,
                ..Default::default()
            },
        );
        assert_ne!(idx.shard_of(0), idx.shard_of(1));
        let mut q = ShardedQuery::new();
        assert_eq!(q.distance(&idx, 0, 1), Some(5));
        assert_eq!(q.distance(&idx, 1, 0), None);
    }

    #[test]
    fn paths_come_from_the_global_index_and_verify() {
        let g = ah_data::fixtures::lattice(6, 6, 10);
        let idx = ShardedIndex::build(&g, &ShardConfig::default());
        let mut q = ShardedQuery::new();
        let p = q.path(&idx, 0, 35).unwrap();
        assert_eq!(q.last_route, Route::Fallback);
        p.verify(&g).unwrap();
        assert_eq!(Some(p.dist.length), q.distance(&idx, 0, 35));
    }
}
