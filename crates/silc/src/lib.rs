//! SILC — *Spatially Induced Linkage Cognizance* (Samet, Sankaranarayanan,
//! Alborzi, SIGMOD 2008; the paper's reference \[21\]).
//!
//! SILC is the worst-case-efficient baseline of Section 6: for every source
//! node it precomputes the *first hop* of the shortest path to every other
//! node, and compresses that coloring into a region quadtree over the node
//! coordinates (shortest paths are spatially coherent, so huge quadrants
//! share one first hop). Queries walk the path hop by hop — `O(k log n)` —
//! by repeated quadtree lookups; distances accumulate edge weights along
//! the walk.
//!
//! The construction computes `n` shortest-path trees (`O(n² log n)` work,
//! `O(n √n)` expected space), which is why the paper (and this harness)
//! only runs SILC on the smaller datasets: its Figure 10 curves are the
//! motivation for AH's existence. `docs/ARCHITECTURE.md` shows where
//! SILC sits in the crate graph.
//!
//! ```
//! use ah_silc::{SilcIndex, SilcQuery};
//!
//! let g = ah_data::fixtures::lattice(5, 5, 16);
//! let idx = SilcIndex::build(&g);
//! let mut q = SilcQuery::new();
//! assert_eq!(
//!     q.distance(&g, &idx, 0, 24),
//!     ah_search::dijkstra_distance(&g, 0, 24).map(|d| d.length)
//! );
//! ```

use ah_graph::{Graph, NodeId, Path, Point};
use ah_search::shortest_path_tree;

mod quadtree;

pub use quadtree::QuadTree;

/// The SILC index: one first-hop quadtree per source node.
pub struct SilcIndex {
    trees: Vec<QuadTree>,
    /// South-west corner of the quadtree square.
    origin: Point,
    /// Side of the quadtree square (power of two).
    side: u64,
}

impl SilcIndex {
    /// Builds the index sequentially.
    pub fn build(g: &Graph) -> SilcIndex {
        Self::build_inner(g, 1)
    }

    /// Builds the index with `threads` worker threads (the `n`
    /// shortest-path trees are embarrassingly parallel).
    pub fn build_parallel(g: &Graph, threads: usize) -> SilcIndex {
        Self::build_inner(g, threads.max(1))
    }

    fn build_inner(g: &Graph, threads: usize) -> SilcIndex {
        let bb = g.bounding_box();
        let (origin, side) = if bb.is_empty() {
            (Point::new(0, 0), 1)
        } else {
            let raw = bb.square_side() + 1;
            (Point::new(bb.min_x, bb.min_y), raw.next_power_of_two())
        };
        let n = g.num_nodes();
        let coords = g.coords();
        let mut trees: Vec<QuadTree> = Vec::with_capacity(n);
        if threads <= 1 || n < 64 {
            for s in 0..n as NodeId {
                trees.push(Self::tree_for(g, coords, origin, side, s));
            }
        } else {
            let mut slots: Vec<Option<QuadTree>> = vec![None; n];
            let next = std::sync::atomic::AtomicUsize::new(0);
            let slots_ptr = slice_ptr(&mut slots);
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let next = &next;
                    let slots_ptr = &slots_ptr;
                    scope.spawn(move || loop {
                        let s = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if s >= n {
                            break;
                        }
                        let tree = Self::tree_for(g, coords, origin, side, s as NodeId);
                        // SAFETY: each index is claimed by exactly one
                        // thread via the atomic counter.
                        unsafe {
                            *slots_ptr.0.add(s) = Some(tree);
                        }
                    });
                }
            });
            trees.extend(slots.into_iter().map(|t| t.expect("slot filled")));
        }
        SilcIndex {
            trees,
            origin,
            side,
        }
    }

    fn tree_for(g: &Graph, coords: &[Point], origin: Point, side: u64, s: NodeId) -> QuadTree {
        let spt = shortest_path_tree(g, s);
        QuadTree::build(coords, &spt.first_hop, origin, side)
    }

    /// First hop of the canonical shortest path from `s` toward `t`, or
    /// `None` if `t` is unreachable from `s`.
    pub fn next_hop(&self, s: NodeId, t: NodeId, t_coord: Point) -> Option<NodeId> {
        self.trees[s as usize].lookup(t, t_coord, self.origin, self.side)
    }

    /// Approximate index size in bytes (Figure 10a accounting).
    pub fn size_bytes(&self) -> usize {
        self.trees.iter().map(QuadTree::size_bytes).sum()
    }

    /// Total quadtree cells across all sources (compression telemetry).
    pub fn total_cells(&self) -> usize {
        self.trees.iter().map(QuadTree::num_cells).sum()
    }
}

/// Wrapper making the raw-pointer handoff to worker threads explicit.
struct SlicePtr<T>(*mut T);
unsafe impl<T: Send> Sync for SlicePtr<T> {}

fn slice_ptr(slots: &mut [Option<QuadTree>]) -> SlicePtr<Option<QuadTree>> {
    SlicePtr(slots.as_mut_ptr())
}

/// Reusable SILC query state (trivially small: SILC queries are iterative
/// lookups, no search frontier).
#[derive(Default)]
pub struct SilcQuery {
    /// Hops taken by the last query (telemetry).
    pub hops: usize,
}

impl SilcQuery {
    /// Creates a query engine.
    pub fn new() -> SilcQuery {
        SilcQuery::default()
    }

    /// Network distance from `s` to `t`: walks the first-hop chain,
    /// summing edge weights (SILC computes distances by path retrieval,
    /// which is why its Figure 8 and Figure 9 timings coincide).
    pub fn distance(&mut self, g: &Graph, idx: &SilcIndex, s: NodeId, t: NodeId) -> Option<u64> {
        self.walk(g, idx, s, t, |_| {})
    }

    /// Shortest path from `s` to `t`.
    pub fn path(&mut self, g: &Graph, idx: &SilcIndex, s: NodeId, t: NodeId) -> Option<Path> {
        let mut nodes = vec![s];
        let length = self.walk(g, idx, s, t, |v| nodes.push(v))?;
        Some(Path {
            nodes,
            dist: ah_graph::Dist::new(length, 0),
        })
    }

    fn walk(
        &mut self,
        g: &Graph,
        idx: &SilcIndex,
        s: NodeId,
        t: NodeId,
        mut visit: impl FnMut(NodeId),
    ) -> Option<u64> {
        self.hops = 0;
        let t_coord = g.coord(t);
        let mut cur = s;
        let mut total = 0u64;
        while cur != t {
            let hop = idx.next_hop(cur, t, t_coord)?;
            let w = g
                .edge_weight(cur, hop)
                .expect("first hop must be an out-edge");
            total += w as u64;
            visit(hop);
            cur = hop;
            self.hops += 1;
            debug_assert!(
                self.hops <= g.num_nodes(),
                "first-hop chain failed to converge"
            );
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_search::{dijkstra_distance, dijkstra_path};

    fn check(g: &Graph, idx: &SilcIndex, stride: usize) {
        let mut q = SilcQuery::new();
        let n = g.num_nodes() as NodeId;
        for s in (0..n).step_by(stride) {
            for t in (0..n).step_by(stride) {
                let want = dijkstra_distance(g, s, t).map(|d| d.length);
                assert_eq!(q.distance(g, idx, s, t), want, "({s},{t})");
                if let Some(p_want) = dijkstra_path(g, s, t) {
                    let p = q.path(g, idx, s, t).unwrap();
                    p.verify(g).unwrap();
                    assert_eq!(p.dist.length, p_want.dist.length);
                    assert_eq!(p.source(), s);
                    assert_eq!(p.target(), t);
                }
            }
        }
    }

    #[test]
    fn correct_on_lattice() {
        let g = ah_data::fixtures::lattice(6, 5, 14);
        let idx = SilcIndex::build(&g);
        check(&g, &idx, 1);
    }

    #[test]
    fn correct_on_road_network() {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 10,
            height: 10,
            one_way: 0.2,
            seed: 55,
            ..Default::default()
        });
        let idx = SilcIndex::build(&g);
        check(&g, &idx, 5);
    }

    #[test]
    fn parallel_build_matches_sequential() {
        let g = ah_data::fixtures::lattice(8, 8, 12);
        let a = SilcIndex::build(&g);
        let b = SilcIndex::build_parallel(&g, 4);
        assert_eq!(a.size_bytes(), b.size_bytes());
        let mut qa = SilcQuery::new();
        let mut qb = SilcQuery::new();
        for s in 0..64u32 {
            for t in (0..64u32).step_by(7) {
                assert_eq!(
                    qa.distance(&g, &a, s, t),
                    qb.distance(&g, &b, s, t)
                );
            }
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut b = ah_graph::GraphBuilder::new();
        b.add_node(Point::new(0, 0));
        b.add_node(Point::new(50, 50));
        b.add_edge(0, 1, 4);
        let g = b.build();
        let idx = SilcIndex::build(&g);
        let mut q = SilcQuery::new();
        assert_eq!(q.distance(&g, &idx, 0, 1), Some(4));
        assert_eq!(q.distance(&g, &idx, 1, 0), None);
        assert!(q.path(&g, &idx, 1, 0).is_none());
    }

    #[test]
    fn quadtrees_compress() {
        // On a lattice with a single far-away target region, most quadrants
        // share a first hop: total cells must be far below n per tree.
        let g = ah_data::fixtures::lattice(12, 12, 10);
        let idx = SilcIndex::build(&g);
        let n = g.num_nodes();
        assert!(
            idx.total_cells() < n * n,
            "no compression at all: {} cells",
            idx.total_cells()
        );
        assert_eq!(ah_graph::INVALID_NODE, u32::MAX); // color encoding precondition
    }
}
