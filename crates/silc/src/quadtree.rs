//! Region quadtrees over first-hop colorings.
//!
//! A leaf stores the single first-hop "color" shared by every graph node in
//! its quadrant (or *empty*, or — for degenerate inputs with coincident
//! coordinates of differing colors — a *mixed* marker with an exception
//! list). Internal cells reference four consecutive children in an arena.

use ah_graph::{NodeId, Point, INVALID_NODE};

/// Arena-encoded quadtree cell.
///
/// * `INTERNAL_BIT` clear → internal: value = index of the first of four
///   consecutive children.
/// * `INTERNAL_BIT` set → leaf: `LEAF_EMPTY`, `LEAF_MIXED`, or
///   `LEAF_COLOR | color` (color may be [`INVALID_NODE`]'s low bits — the
///   "unreachable" color — encoded via an offset).
const LEAF_BIT: u32 = 0x8000_0000;
const LEAF_EMPTY: u32 = LEAF_BIT;
const LEAF_MIXED: u32 = LEAF_BIT | 0x7FFF_FFFF;

/// A compressed first-hop map for one source node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuadTree {
    cells: Vec<u32>,
    /// `(target node, color)` pairs for nodes inside mixed leaves.
    exceptions: Vec<(NodeId, u32)>,
}

/// Colors are node ids shifted by one so that `0` encodes "unreachable"
/// ([`INVALID_NODE`] first hops) within the 31-bit leaf payload.
fn encode_color(hop: NodeId) -> u32 {
    if hop == INVALID_NODE {
        0
    } else {
        hop + 1
    }
}

fn decode_color(c: u32) -> Option<NodeId> {
    if c == 0 {
        None
    } else {
        Some(c - 1)
    }
}

impl QuadTree {
    /// Builds the quadtree for one source: `first_hop[v]` is the color of
    /// node `v` (or [`INVALID_NODE`] when unreachable). `origin`/`side`
    /// define the (power-of-two) square all coordinates fall into.
    pub fn build(coords: &[Point], first_hop: &[NodeId], origin: Point, side: u64) -> QuadTree {
        debug_assert!(side.is_power_of_two());
        let mut tree = QuadTree {
            cells: vec![LEAF_EMPTY],
            exceptions: Vec::new(),
        };
        let mut members: Vec<NodeId> = (0..coords.len() as NodeId).collect();
        tree.build_cell(0, coords, first_hop, origin, side, &mut members);
        tree
    }

    fn build_cell(
        &mut self,
        cell: usize,
        coords: &[Point],
        first_hop: &[NodeId],
        origin: Point,
        side: u64,
        members: &mut Vec<NodeId>,
    ) {
        if members.is_empty() {
            self.cells[cell] = LEAF_EMPTY;
            return;
        }
        let first_color = encode_color(first_hop[members[0] as usize]);
        if members
            .iter()
            .all(|&v| encode_color(first_hop[v as usize]) == first_color)
        {
            self.cells[cell] = LEAF_BIT | first_color;
            return;
        }
        if side <= 1 {
            // Coincident coordinates with different colors: exception list.
            self.cells[cell] = LEAF_MIXED;
            for &v in members.iter() {
                self.exceptions
                    .push((v, encode_color(first_hop[v as usize])));
            }
            return;
        }
        // Split into quadrants.
        let half = (side / 2) as i64;
        let mid_x = origin.x as i64 + half;
        let mid_y = origin.y as i64 + half;
        let base = self.cells.len();
        self.cells.extend_from_slice(&[LEAF_EMPTY; 4]);
        self.cells[cell] = base as u32;
        let mut quads: [Vec<NodeId>; 4] = Default::default();
        for &v in members.iter() {
            let p = coords[v as usize];
            let qx = (p.x as i64 >= mid_x) as usize;
            let qy = (p.y as i64 >= mid_y) as usize;
            quads[qy * 2 + qx].push(v);
        }
        members.clear();
        for (q, mut quad_members) in quads.into_iter().enumerate() {
            let qx = (q % 2) as i64;
            let qy = (q / 2) as i64;
            let sub_origin = Point::new(
                (origin.x as i64 + qx * half) as i32,
                (origin.y as i64 + qy * half) as i32,
            );
            self.build_cell(
                base + q,
                coords,
                first_hop,
                sub_origin,
                side / 2,
                &mut quad_members,
            );
        }
    }

    /// Looks up the first hop toward node `t` located at `t_coord`.
    pub fn lookup(&self, t: NodeId, t_coord: Point, origin: Point, side: u64) -> Option<NodeId> {
        let mut cell = 0usize;
        let mut ox = origin.x as i64;
        let mut oy = origin.y as i64;
        let mut s = side;
        loop {
            let v = self.cells[cell];
            if v & LEAF_BIT != 0 {
                if v == LEAF_MIXED {
                    let c = self
                        .exceptions
                        .iter()
                        .find(|&&(node, _)| node == t)
                        .map(|&(_, c)| c)
                        .unwrap_or(0);
                    return decode_color(c);
                }
                return decode_color(v & !LEAF_BIT);
            }
            let half = (s / 2) as i64;
            let qx = (t_coord.x as i64 >= ox + half) as usize;
            let qy = (t_coord.y as i64 >= oy + half) as usize;
            cell = v as usize + qy * 2 + qx;
            ox += qx as i64 * half;
            oy += qy as i64 * half;
            s /= 2;
        }
    }

    /// Number of arena cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Approximate heap footprint.
    pub fn size_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<u32>()
            + self.exceptions.len() * std::mem::size_of::<(NodeId, u32)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_coloring_is_one_leaf() {
        let coords = vec![Point::new(0, 0), Point::new(3, 3), Point::new(1, 2)];
        let hops = vec![7, 7, 7];
        let t = QuadTree::build(&coords, &hops, Point::new(0, 0), 4);
        assert_eq!(t.num_cells(), 1);
        assert_eq!(t.lookup(1, coords[1], Point::new(0, 0), 4), Some(7));
    }

    #[test]
    fn split_coloring() {
        // West nodes route via 1, east nodes via 2.
        let coords = vec![
            Point::new(0, 0),
            Point::new(1, 3),
            Point::new(6, 1),
            Point::new(7, 7),
        ];
        let hops = vec![1, 1, 2, 2];
        let origin = Point::new(0, 0);
        let t = QuadTree::build(&coords, &hops, origin, 8);
        assert!(t.num_cells() > 1);
        for (i, c) in coords.iter().enumerate() {
            assert_eq!(
                t.lookup(i as NodeId, *c, origin, 8),
                Some(hops[i]),
                "node {i}"
            );
        }
    }

    #[test]
    fn unreachable_color() {
        let coords = vec![Point::new(0, 0), Point::new(5, 5)];
        let hops = vec![1, INVALID_NODE];
        let origin = Point::new(0, 0);
        let t = QuadTree::build(&coords, &hops, origin, 8);
        assert_eq!(t.lookup(0, coords[0], origin, 8), Some(1));
        assert_eq!(t.lookup(1, coords[1], origin, 8), None);
    }

    #[test]
    fn coincident_nodes_use_exceptions() {
        let coords = vec![Point::new(2, 2), Point::new(2, 2)];
        let hops = vec![5, 9];
        let origin = Point::new(0, 0);
        let t = QuadTree::build(&coords, &hops, origin, 4);
        assert_eq!(t.lookup(0, coords[0], origin, 4), Some(5));
        assert_eq!(t.lookup(1, coords[1], origin, 4), Some(9));
    }

    #[test]
    fn empty_tree() {
        let t = QuadTree::build(&[], &[], Point::new(0, 0), 1);
        assert_eq!(t.lookup(0, Point::new(0, 0), Point::new(0, 0), 1), None);
    }
}
