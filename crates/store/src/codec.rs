//! Little-endian flat-array encoding primitives.
//!
//! Section payloads are sequences of *fields*: scalars (written as
//! fixed-width little-endian integers) and arrays (a `u64` element count
//! followed by the packed elements, zero-padded to the next 8-byte
//! boundary). Everything is position-based — no field names, no varints —
//! so the byte layout in `docs/FORMAT.md` is exact and a large array's
//! bytes are directly `mmap`-able by a future zero-copy reader.
//!
//! [`FieldWriter`] produces a payload; [`FieldReader`] consumes one, with
//! every over-read reported as a typed [`SnapshotError::Malformed`] naming
//! the section (the payload checksum has already passed by the time a
//! reader runs, so a decode failure means an encoder bug or a forged
//! file, not bit rot).

use crate::error::SnapshotError;
use crate::format::SectionTag;

/// Append-only payload writer.
#[derive(Default)]
pub struct FieldWriter {
    buf: Vec<u8>,
}

impl FieldWriter {
    /// Starts an empty payload.
    pub fn new() -> Self {
        FieldWriter::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Zero-pads to the next 8-byte boundary.
    pub fn pad8(&mut self) {
        while self.buf.len() % 8 != 0 {
            self.buf.push(0);
        }
    }

    /// Writes a `u32` scalar.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i32` scalar.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` scalar.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes `count` as the array-length prefix.
    fn put_len(&mut self, count: usize) {
        self.put_u64(count as u64);
    }

    /// Writes a `u8` array (length prefix + bytes + padding).
    pub fn put_u8_slice(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
        self.pad8();
    }

    /// Writes a `u32` array (length prefix + packed LE elements + padding).
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_len(v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
        self.pad8();
    }

    /// Writes a `u64` array (length prefix + packed LE elements; already
    /// 8-aligned).
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.put_len(v.len());
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }
}

/// Sequential payload reader over a checksum-verified section.
pub struct FieldReader<'a> {
    buf: &'a [u8],
    pos: usize,
    section: SectionTag,
}

impl<'a> FieldReader<'a> {
    /// Reads `bytes`, attributing failures to `section`.
    pub fn new(section: SectionTag, bytes: &'a [u8]) -> Self {
        FieldReader {
            buf: bytes,
            pos: 0,
            section,
        }
    }

    /// The section this reader decodes (for error construction).
    pub fn section(&self) -> SectionTag {
        self.section
    }

    /// A [`SnapshotError::Malformed`] in this section.
    pub fn malformed(&self, reason: &'static str) -> SnapshotError {
        SnapshotError::Malformed {
            section: self.section,
            reason,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() - self.pos < n {
            return Err(self.malformed("payload ends mid-field"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Skips padding up to the next 8-byte boundary.
    pub fn align8(&mut self) -> Result<(), SnapshotError> {
        let rem = self.pos % 8;
        if rem != 0 {
            self.take(8 - rem)?;
        }
        Ok(())
    }

    /// Reads a `u32` scalar.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads an `i32` scalar.
    pub fn get_i32(&mut self) -> Result<i32, SnapshotError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` scalar.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an array-length prefix, bounding it by the bytes that could
    /// possibly follow (`elem_size` bytes per element) so a forged length
    /// cannot trigger a huge allocation.
    pub fn get_len(&mut self, elem_size: usize) -> Result<usize, SnapshotError> {
        let count = self.get_u64()?;
        let available = (self.buf.len() - self.pos) as u64;
        if count
            .checked_mul(elem_size as u64)
            .map_or(true, |bytes| bytes > available)
        {
            return Err(self.malformed("array length exceeds the payload"));
        }
        Ok(count as usize)
    }

    /// Reads a `u8` array.
    pub fn get_u8_vec(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let n = self.get_len(1)?;
        let out = self.take(n)?.to_vec();
        self.align8()?;
        Ok(out)
    }

    /// Reads a `u32` array.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, SnapshotError> {
        let n = self.get_len(4)?;
        let bytes = self.take(n * 4)?;
        let out = bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        self.align8()?;
        Ok(out)
    }

    /// Reads a `u64` array.
    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>, SnapshotError> {
        let n = self.get_len(8)?;
        let bytes = self.take(n * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Fails unless every payload byte has been consumed — trailing bytes
    /// mean the reader and writer disagree about the layout.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.pos != self.buf.len() {
            return Err(self.malformed("trailing bytes after the last field"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag() -> SectionTag {
        SectionTag(*b"test\0\0\0\0")
    }

    #[test]
    fn scalar_and_array_roundtrip() {
        let mut w = FieldWriter::new();
        w.put_u64(42);
        w.put_u32_slice(&[1, 2, 3]);
        w.put_u8_slice(&[9, 8]);
        w.put_i32(-7);
        w.put_u32(5);
        let bytes = w.into_bytes();

        let mut r = FieldReader::new(tag(), &bytes);
        assert_eq!(r.get_u64().unwrap(), 42);
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_u8_vec().unwrap(), vec![9, 8]);
        assert_eq!(r.get_i32().unwrap(), -7);
        assert_eq!(r.get_u32().unwrap(), 5);
        r.expect_end().unwrap();
    }

    #[test]
    fn arrays_are_8_aligned() {
        let mut w = FieldWriter::new();
        w.put_u8_slice(&[1, 2, 3]); // 8 (len) + 3 + 5 pad
        assert_eq!(w.into_bytes().len(), 16);
    }

    #[test]
    fn over_read_is_typed_not_panic() {
        let mut w = FieldWriter::new();
        w.put_u32(1);
        let bytes = w.into_bytes();
        let mut r = FieldReader::new(tag(), &bytes);
        assert!(matches!(
            r.get_u64(),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn forged_length_is_rejected() {
        let mut w = FieldWriter::new();
        w.put_u64(u64::MAX); // a length prefix promising 2^64 elements
        let bytes = w.into_bytes();
        let mut r = FieldReader::new(tag(), &bytes);
        assert!(matches!(
            r.get_u32_vec(),
            Err(SnapshotError::Malformed { .. })
        ));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = FieldWriter::new();
        w.put_u64(1);
        w.put_u64(2);
        let bytes = w.into_bytes();
        let mut r = FieldReader::new(tag(), &bytes);
        assert_eq!(r.get_u64().unwrap(), 1);
        assert!(r.expect_end().is_err());
    }
}
