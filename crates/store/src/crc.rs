//! CRC-64 checksums (the CRC-64/XZ parameterization).
//!
//! Every snapshot section — and the header/section table itself — carries
//! a CRC-64 so that bit rot, truncation-by-editor, or a partially written
//! file is detected *before* any payload bytes are interpreted. The
//! parameterization is CRC-64/XZ (reflected ECMA-182 polynomial, init and
//! xor-out all-ones), chosen because it is the best-known 64-bit CRC with
//! public test vectors, so an independent reader implementation can be
//! verified against `check("123456789") == 0x995D_C9BB_DF19_39FA`.

/// Reflected form of the ECMA-182 polynomial `0x42F0E1EBA9EA3693`.
const POLY_REFLECTED: u64 = 0xC96C_5795_D787_0F42;

/// Byte-at-a-time lookup table, built at compile time.
const TABLE: [u64; 256] = build_table();

const fn build_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY_REFLECTED
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-64/XZ of `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = u64::MAX;
    for &b in bytes {
        crc = TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ u64::MAX
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The standard CRC catalogue check string.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        data[500] = 0x5A;
        let base = crc64(&data);
        for bit in 0..8 {
            let mut flipped = data.clone();
            flipped[500] ^= 1 << bit;
            assert_ne!(crc64(&flipped), base, "bit {bit} undetected");
        }
    }
}
