//! Section payload encoders/decoders for the persisted types.
//!
//! Each top-level object maps to one section (see
//! [`crate::format::SectionTag`]); composite objects are encoded as a
//! fixed sequence of sub-blocks so the contraction [`Hierarchy`] encoding
//! is shared verbatim between the `ah.index` and `ch.index` sections. The
//! byte-exact field order is normative and documented in
//! `docs/FORMAT.md`; any change here must bump
//! [`crate::format::VERSION`].
//!
//! Decoders run only on checksum-verified payloads and still trust
//! nothing: every structural invariant is re-checked through the source
//! crates' validated `from_raw_parts` constructors, so a forged file
//! yields a typed [`SnapshotError`], never a panic or an index that
//! answers queries from out-of-bounds memory.

use ah_ch::ChIndex;
use ah_contraction::{HArc, Hierarchy};
use ah_core::{AhIndex, ElevArc, ElevatingSets, ElevatingSide};
use ah_graph::{Arc, Dist, Graph, NodeId, Point, WeightChange, WeightDelta};
use ah_grid::GridHierarchy;
use ah_labels::{LabelEntry, LabelIndex};
use ah_shard::ShardedIndex;

use crate::codec::{FieldReader, FieldWriter};
use crate::error::SnapshotError;
use crate::format::SectionTag;

// ---------------------------------------------------------------- graph

/// Encodes a [`Graph`] as the `graph` section payload.
pub fn encode_graph(g: &Graph) -> Vec<u8> {
    let (out_offsets, out_arcs, in_offsets, in_arcs, coords) = g.csr_parts();
    let mut w = FieldWriter::new();
    w.put_u64(g.num_nodes() as u64);
    w.put_u32_slice(out_offsets);
    put_arc_slice(&mut w, out_arcs);
    w.put_u32_slice(in_offsets);
    put_arc_slice(&mut w, in_arcs);
    put_point_slice(&mut w, coords);
    w.into_bytes()
}

/// Decodes the `graph` section payload.
pub fn decode_graph(bytes: &[u8]) -> Result<Graph, SnapshotError> {
    let mut r = FieldReader::new(SectionTag::GRAPH, bytes);
    let n = r.get_u64()? as usize;
    let out_offsets = r.get_u32_vec()?;
    let out_arcs = get_arc_vec(&mut r)?;
    let in_offsets = r.get_u32_vec()?;
    let in_arcs = get_arc_vec(&mut r)?;
    let coords = get_point_vec(&mut r)?;
    r.expect_end()?;
    if coords.len() != n {
        return Err(r.malformed("node count disagrees with the coordinate array"));
    }
    Graph::from_csr_parts(out_offsets, out_arcs, in_offsets, in_arcs, coords)
        .map_err(|reason| SnapshotError::Malformed {
            section: SectionTag::GRAPH,
            reason,
        })
}

fn put_arc_slice(w: &mut FieldWriter, arcs: &[Arc]) {
    w.put_u64(arcs.len() as u64);
    for a in arcs {
        w.put_u32(a.head);
        w.put_u32(a.weight);
        w.put_u32(a.nuance);
    }
    w.pad8();
}

fn get_arc_vec(r: &mut FieldReader<'_>) -> Result<Vec<Arc>, SnapshotError> {
    let n = r.get_len(12)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Arc {
            head: r.get_u32()?,
            weight: r.get_u32()?,
            nuance: r.get_u32()?,
        });
    }
    r.align8()?;
    Ok(out)
}

fn put_point_slice(w: &mut FieldWriter, points: &[Point]) {
    w.put_u64(points.len() as u64);
    for p in points {
        w.put_i32(p.x);
        w.put_i32(p.y);
    }
    w.pad8();
}

fn get_point_vec(r: &mut FieldReader<'_>) -> Result<Vec<Point>, SnapshotError> {
    let n = r.get_len(8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let x = r.get_i32()?;
        let y = r.get_i32()?;
        out.push(Point::new(x, y));
    }
    r.align8()?;
    Ok(out)
}

// ------------------------------------------------------------ hierarchy

fn put_harc_slice(w: &mut FieldWriter, arcs: &[HArc]) {
    w.put_u64(arcs.len() as u64);
    for a in arcs {
        w.put_u32(a.to);
        w.put_u32(a.middle);
        w.put_u64(a.dist.length);
        w.put_u64(a.dist.nuance);
    }
}

fn get_harc_vec(r: &mut FieldReader<'_>) -> Result<Vec<HArc>, SnapshotError> {
    let n = r.get_len(24)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let to = r.get_u32()?;
        let middle = r.get_u32()?;
        let length = r.get_u64()?;
        let nuance = r.get_u64()?;
        out.push(HArc {
            to,
            middle,
            dist: Dist::new(length, nuance),
        });
    }
    Ok(out)
}

/// Encodes a contraction [`Hierarchy`] sub-block (shared by the AH and CH
/// sections).
fn put_hierarchy(w: &mut FieldWriter, h: &Hierarchy) {
    let parts = h.raw_parts();
    w.put_u64(parts.rank.len() as u64);
    w.put_u64(parts.num_shortcuts as u64);
    w.put_u32_slice(parts.rank);
    for (offsets, arcs) in parts.views {
        w.put_u32_slice(offsets);
        put_harc_slice(w, arcs);
    }
}

fn get_hierarchy(r: &mut FieldReader<'_>) -> Result<Hierarchy, SnapshotError> {
    let n = r.get_u64()? as usize;
    let num_shortcuts = r.get_u64()? as usize;
    let rank = r.get_u32_vec()?;
    if rank.len() != n {
        return Err(r.malformed("hierarchy node count disagrees with the rank array"));
    }
    let mut views: [(Vec<u32>, Vec<HArc>); 4] = Default::default();
    for view in views.iter_mut() {
        let offsets = r.get_u32_vec()?;
        let arcs = get_harc_vec(r)?;
        *view = (offsets, arcs);
    }
    let section = r.section();
    Hierarchy::from_raw_parts(rank, views, num_shortcuts)
        .map_err(|reason| SnapshotError::Malformed { section, reason })
}

// ------------------------------------------------------------- ah.index

/// Encodes an [`AhIndex`] as the `ah.index` section payload.
pub fn encode_ah(idx: &AhIndex) -> Vec<u8> {
    let parts = idx.raw_parts();
    let mut w = FieldWriter::new();
    let (origin, h, s1) = parts.grid.raw_parts();
    w.put_i32(origin.x);
    w.put_i32(origin.y);
    w.put_u32(h);
    w.put_u32(0); // reserved / alignment
    w.put_u64(s1);
    put_hierarchy(&mut w, parts.hierarchy);
    w.put_u8_slice(parts.level);
    put_point_slice(&mut w, parts.coords);
    put_side(&mut w, &parts.elevating.forward);
    put_side(&mut w, &parts.elevating.backward);
    w.into_bytes()
}

/// Decodes the `ah.index` section payload.
pub fn decode_ah(bytes: &[u8]) -> Result<AhIndex, SnapshotError> {
    decode_ah_in(SectionTag::AH, bytes)
}

/// Decodes an AH-index payload from `section` (the global `ah.index`
/// section or a per-shard `shardNNN` section — the payloads are
/// identical; only error attribution differs).
fn decode_ah_in(section: SectionTag, bytes: &[u8]) -> Result<AhIndex, SnapshotError> {
    let mut r = FieldReader::new(section, bytes);
    let ox = r.get_i32()?;
    let oy = r.get_i32()?;
    let h = r.get_u32()?;
    let _reserved = r.get_u32()?;
    let s1 = r.get_u64()?;
    let grid = GridHierarchy::from_raw_parts(Point::new(ox, oy), h, s1)
        .map_err(|reason| r.malformed(reason))?;
    let hierarchy = get_hierarchy(&mut r)?;
    let level = r.get_u8_vec()?;
    let coords = get_point_vec(&mut r)?;
    let forward = get_side(&mut r)?;
    let backward = get_side(&mut r)?;
    r.expect_end()?;
    AhIndex::from_raw_parts(
        grid,
        hierarchy,
        level,
        coords,
        ElevatingSets { forward, backward },
    )
    .map_err(|reason| SnapshotError::Malformed { section, reason })
}

fn put_side(w: &mut FieldWriter, side: &ElevatingSide) {
    let (node_offsets, entries, arcs, chains) = side.raw_parts();
    w.put_u32_slice(node_offsets);
    w.put_u64(entries.len() as u64);
    for &(level, start, len) in entries {
        w.put_u32(level as u32);
        w.put_u32(start);
        w.put_u32(len);
    }
    w.pad8();
    w.put_u64(arcs.len() as u64);
    for a in arcs {
        let (chain_start, chain_len) = a.chain_range();
        w.put_u32(a.to);
        w.put_u32(chain_start);
        w.put_u32(chain_len);
        w.put_u32(0); // reserved / alignment
        w.put_u64(a.dist.length);
        w.put_u64(a.dist.nuance);
    }
    w.put_u64(chains.len() as u64);
    for &(tail, arc) in chains {
        w.put_u32(tail);
        w.put_u32(arc.to);
        w.put_u32(arc.middle);
        w.put_u32(0); // reserved / alignment
        w.put_u64(arc.dist.length);
        w.put_u64(arc.dist.nuance);
    }
}

fn get_side(r: &mut FieldReader<'_>) -> Result<ElevatingSide, SnapshotError> {
    let node_offsets = r.get_u32_vec()?;
    let n_entries = r.get_len(12)?;
    let mut entries = Vec::with_capacity(n_entries);
    for _ in 0..n_entries {
        let level = r.get_u32()?;
        let start = r.get_u32()?;
        let len = r.get_u32()?;
        if level > u8::MAX as u32 {
            return Err(r.malformed("elevating entry level exceeds u8"));
        }
        entries.push((level as u8, start, len));
    }
    r.align8()?;
    let n_arcs = r.get_len(32)?;
    let mut arcs = Vec::with_capacity(n_arcs);
    for _ in 0..n_arcs {
        let to = r.get_u32()?;
        let chain_start = r.get_u32()?;
        let chain_len = r.get_u32()?;
        let _reserved = r.get_u32()?;
        let length = r.get_u64()?;
        let nuance = r.get_u64()?;
        arcs.push(ElevArc::from_raw_parts(
            to,
            Dist::new(length, nuance),
            chain_start,
            chain_len,
        ));
    }
    let n_chains = r.get_len(32)?;
    let mut chains: Vec<(NodeId, HArc)> = Vec::with_capacity(n_chains);
    for _ in 0..n_chains {
        let tail = r.get_u32()?;
        let to = r.get_u32()?;
        let middle = r.get_u32()?;
        let _reserved = r.get_u32()?;
        let length = r.get_u64()?;
        let nuance = r.get_u64()?;
        chains.push((
            tail,
            HArc {
                to,
                middle,
                dist: Dist::new(length, nuance),
            },
        ));
    }
    let section = r.section();
    ElevatingSide::from_raw_parts(node_offsets, entries, arcs, chains)
        .map_err(|reason| SnapshotError::Malformed { section, reason })
}

// ------------------------------------------------------------- ch.index

/// Encodes a [`ChIndex`] as the `ch.index` section payload.
pub fn encode_ch(idx: &ChIndex) -> Vec<u8> {
    let mut w = FieldWriter::new();
    put_hierarchy(&mut w, idx.hierarchy());
    w.put_u32_slice(idx.order());
    w.into_bytes()
}

/// Decodes the `ch.index` section payload.
pub fn decode_ch(bytes: &[u8]) -> Result<ChIndex, SnapshotError> {
    let mut r = FieldReader::new(SectionTag::CH, bytes);
    let hierarchy = get_hierarchy(&mut r)?;
    let order = r.get_u32_vec()?;
    r.expect_end()?;
    ChIndex::from_raw_parts(hierarchy, order).map_err(|reason| SnapshotError::Malformed {
        section: SectionTag::CH,
        reason,
    })
}

// --------------------------------------------------- labels (format v3)

fn put_label_slice(w: &mut FieldWriter, entries: &[LabelEntry]) {
    w.put_u64(entries.len() as u64);
    for e in entries {
        w.put_u32(e.hub);
        w.put_u32(0); // reserved / alignment
        w.put_u64(e.dist.length);
        w.put_u64(e.dist.nuance);
    }
}

fn get_label_vec(r: &mut FieldReader<'_>) -> Result<Vec<LabelEntry>, SnapshotError> {
    let n = r.get_len(24)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let hub = r.get_u32()?;
        let _reserved = r.get_u32()?;
        let length = r.get_u64()?;
        let nuance = r.get_u64()?;
        out.push(LabelEntry {
            hub,
            dist: Dist::new(length, nuance),
        });
    }
    Ok(out)
}

/// Encodes a [`LabelIndex`] as the `labels` section payload.
pub fn encode_labels(idx: &LabelIndex) -> Vec<u8> {
    let (out_offsets, out_entries, in_offsets, in_entries) = idx.raw_parts();
    let mut w = FieldWriter::new();
    w.put_u64(idx.num_nodes() as u64);
    w.put_u32_slice(out_offsets);
    put_label_slice(&mut w, out_entries);
    w.put_u32_slice(in_offsets);
    put_label_slice(&mut w, in_entries);
    w.into_bytes()
}

/// Decodes the `labels` section payload.
pub fn decode_labels(bytes: &[u8]) -> Result<LabelIndex, SnapshotError> {
    let mut r = FieldReader::new(SectionTag::LABELS, bytes);
    let n = r.get_u64()? as usize;
    let out_offsets = r.get_u32_vec()?;
    let out_entries = get_label_vec(&mut r)?;
    let in_offsets = r.get_u32_vec()?;
    let in_entries = get_label_vec(&mut r)?;
    r.expect_end()?;
    if out_offsets.len() != n + 1 {
        return Err(r.malformed("node count disagrees with the label offsets"));
    }
    LabelIndex::from_raw_parts(out_offsets, out_entries, in_offsets, in_entries).map_err(
        |reason| SnapshotError::Malformed {
            section: SectionTag::LABELS,
            reason,
        },
    )
}

// ---------------------------------------------------- delta (format v4)

/// Encodes a [`WeightDelta`] as the `delta` section payload. Weights
/// are stored raw (0 stays 0; clamping happens at apply time), so the
/// codec is lossless for every boundary weight including `0`,
/// `u32::MAX - 1` and the `u32::MAX` closure sentinel.
pub fn encode_delta(delta: &WeightDelta) -> Vec<u8> {
    let mut w = FieldWriter::new();
    w.put_u64(delta.base_id());
    w.put_u64(delta.len() as u64);
    for c in delta.changes() {
        w.put_u32(c.tail);
        w.put_u32(c.head);
        w.put_u32(c.weight);
        w.put_u32(0); // reserved / alignment
    }
    w.into_bytes()
}

/// Decodes the `delta` section payload. Canonical form (strictly
/// ascending `(tail, head)`, no self-loops) is re-validated through
/// [`WeightDelta::from_raw_parts`]; the base id is cross-checked
/// against the snapshot's graph section by the caller.
pub fn decode_delta(bytes: &[u8]) -> Result<WeightDelta, SnapshotError> {
    let mut r = FieldReader::new(SectionTag::DELTA, bytes);
    let base_id = r.get_u64()?;
    let n = r.get_len(16)?;
    let mut changes = Vec::with_capacity(n);
    for _ in 0..n {
        let tail = r.get_u32()?;
        let head = r.get_u32()?;
        let weight = r.get_u32()?;
        let _reserved = r.get_u32()?;
        changes.push(WeightChange { tail, head, weight });
    }
    r.expect_end()?;
    WeightDelta::from_raw_parts(base_id, changes).map_err(|e| SnapshotError::Malformed {
        section: SectionTag::DELTA,
        reason: match e {
            ah_graph::DeltaError::Unsorted => "delta changes are not strictly ascending",
            ah_graph::DeltaError::SelfLoop { .. } => "delta names a self-loop",
            _ => "delta changes are not in canonical form",
        },
    })
}

// --------------------------------------------------- shards (format v2)

/// Encodes a [`ShardedIndex`] as its sharded-snapshot sections: the
/// `shards` metadata section plus one `shardNNN` AH-payload section per
/// non-empty shard. The global AH index and the graph are *not* among
/// the returned sections — the caller persists them under their own
/// tags ([`SectionTag::AH`], [`SectionTag::GRAPH`]), and the decoder
/// reassembles the partition skeleton from them.
pub fn encode_shard_sections(idx: &ShardedIndex) -> Vec<(SectionTag, Vec<u8>)> {
    let mut w = FieldWriter::new();
    w.put_u32(idx.num_shards() as u32);
    w.put_u32(idx.map().level());
    w.put_u32(idx.certified() as u32);
    w.put_u32(0); // reserved / alignment
    w.put_u64(idx.num_nodes() as u64);
    w.put_u64(idx.border_nodes().len() as u64);
    w.put_u64_slice(idx.matrix());
    for s in 0..idx.num_shards() {
        let pairs = idx.shard(s).reentry();
        w.put_u64(pairs.len() as u64);
        for &(u, q) in pairs {
            w.put_u32(u);
            w.put_u32(q);
        }
    }
    let mut sections = vec![(SectionTag::SHARDS, w.into_bytes())];
    for s in 0..idx.num_shards() {
        if let Some(shard_idx) = idx.shard(s).index() {
            sections.push((SectionTag::shard_slot(s), encode_ah(shard_idx)));
        }
    }
    sections
}

/// Decodes the sharded-snapshot sections of `container` against the
/// already-decoded graph and global AH index. The partition skeleton is
/// recomputed deterministically ([`ShardedIndex::from_raw_parts`]) and
/// every persisted piece is validated against it *structurally*: shard
/// count, partition level, per-shard node counts, matrix size, border
/// and reentry index ranges. A combination of sections that fails any
/// of these yields a typed error, never a misrouting index. Like every
/// other section (edge weights included), the *values* — matrix
/// distances, reentry sets, per-shard index contents — are trusted
/// from the writer; checksums guard against corruption, not against a
/// writer persisting stale data.
pub fn decode_sharded(
    container: &crate::format::Container<'_>,
    graph: &Graph,
    global: std::sync::Arc<AhIndex>,
) -> Result<ShardedIndex, SnapshotError> {
    let bytes = container
        .section(SectionTag::SHARDS)
        .ok_or(SnapshotError::MissingSection {
            section: SectionTag::SHARDS,
        })?;
    let mut r = FieldReader::new(SectionTag::SHARDS, bytes);
    let k = r.get_u32()? as usize;
    let level = r.get_u32()?;
    let certified = match r.get_u32()? {
        0 => false,
        1 => true,
        _ => return Err(r.malformed("certified flag is not 0 or 1")),
    };
    let _reserved = r.get_u32()?;
    let num_nodes = r.get_u64()? as usize;
    let border_count = r.get_u64()? as usize;
    let matrix = r.get_u64_vec()?;
    if k == 0 || k > 256 {
        return Err(r.malformed("shard count outside 1..=256"));
    }
    let mut reentry: Vec<Vec<(u32, u32)>> = Vec::with_capacity(k);
    for _ in 0..k {
        let n_pairs = r.get_len(8)?;
        let mut pairs = Vec::with_capacity(n_pairs);
        for _ in 0..n_pairs {
            let u = r.get_u32()?;
            let q = r.get_u32()?;
            if u as usize >= border_count || q as usize >= border_count {
                return Err(r.malformed("reentry pair names a border out of range"));
            }
            pairs.push((u, q));
        }
        reentry.push(pairs);
    }
    r.expect_end()?;
    if num_nodes != graph.num_nodes() {
        return Err(r.malformed("sharded node count disagrees with the graph section"));
    }
    if certified && matrix.len() != border_count * border_count {
        return Err(r.malformed("boundary matrix size is not |borders|^2"));
    }

    let mut indexes = Vec::with_capacity(k);
    for s in 0..k {
        let tag = SectionTag::shard_slot(s);
        let idx = container
            .section(tag)
            .map(|b| decode_ah_in(tag, b))
            .transpose()?;
        indexes.push(idx);
    }

    let idx =
        ShardedIndex::from_raw_parts(graph, global, k, indexes, certified, matrix, reentry)
            .map_err(|reason| SnapshotError::Malformed {
                section: SectionTag::SHARDS,
                reason,
            })?;
    if idx.map().level() != level || idx.border_nodes().len() != border_count {
        return Err(SnapshotError::Malformed {
            section: SectionTag::SHARDS,
            reason: "persisted partition disagrees with the graph-derived one",
        });
    }
    Ok(idx)
}
