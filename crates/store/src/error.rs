//! Typed snapshot failure modes.
//!
//! Every way a snapshot load can fail maps to one variant here — the
//! loader never panics and never constructs a partially valid object. The
//! variants are ordered roughly by how early the failure is detected:
//! I/O, then container framing (magic/version/table), then per-section
//! checksums, then payload decoding.

use crate::format::SectionTag;

/// Why a snapshot could not be written or loaded.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying file-system failure (open, read, rename, …).
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — not a snapshot
    /// at all, or the header bytes were damaged.
    BadMagic,
    /// The file declares a format version this reader does not speak —
    /// newer than this build, or the never-assigned version 0. Layout
    /// changes bump [`crate::format::VERSION`]; old readers must refuse
    /// newer files rather than misread them.
    UnsupportedVersion {
        /// Version found in the file.
        found: u16,
        /// Newest version this build understands.
        supported: u16,
    },
    /// The file ends before the promised bytes: a truncated download or a
    /// partially flushed write (the atomic tmp+rename in
    /// [`crate::Snapshot::write`] prevents the latter on the happy path).
    Truncated {
        /// Bytes the container layout requires.
        needed: u64,
        /// Bytes actually present.
        available: u64,
    },
    /// The header/section-table checksum does not match: the table cannot
    /// be trusted, so no section is readable.
    TableChecksumMismatch,
    /// A section's payload checksum does not match its table entry.
    SectionChecksumMismatch {
        /// The damaged section.
        section: SectionTag,
    },
    /// The container is internally inconsistent (overlapping or
    /// out-of-bounds section ranges, misaligned offsets).
    BadLayout(&'static str),
    /// A required section is absent from the file.
    MissingSection {
        /// The section the caller needed.
        section: SectionTag,
    },
    /// The same tag appears twice in the section table.
    DuplicateSection {
        /// The repeated section.
        section: SectionTag,
    },
    /// The `delta` section names a different base graph than the
    /// snapshot's `graph` section (by `ah_graph::Graph::content_id`):
    /// the changes were cut against another generation of the network
    /// and applying them would produce weights that never coexisted.
    DeltaBaseMismatch {
        /// Base graph content id the delta was cut against.
        expected: u64,
        /// Content id of the graph actually in the snapshot.
        found: u64,
    },
    /// A section passed its checksum but its payload violates a structural
    /// invariant (CSR shape, index bounds, …) — an encoder bug or a
    /// deliberately forged file.
    Malformed {
        /// The offending section.
        section: SectionTag,
        /// The violated invariant.
        reason: &'static str,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this reader implements version {supported})"
            ),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "snapshot truncated: needs {needed} bytes, found {available}"
            ),
            SnapshotError::TableChecksumMismatch => {
                write!(f, "snapshot header/section-table checksum mismatch")
            }
            SnapshotError::SectionChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section `{section}`")
            }
            SnapshotError::BadLayout(reason) => {
                write!(f, "inconsistent snapshot layout: {reason}")
            }
            SnapshotError::MissingSection { section } => {
                write!(f, "snapshot has no `{section}` section")
            }
            SnapshotError::DuplicateSection { section } => {
                write!(f, "section `{section}` appears twice")
            }
            SnapshotError::DeltaBaseMismatch { expected, found } => write!(
                f,
                "delta section was cut against base graph {expected:#018x}, but the snapshot's graph is {found:#018x}"
            ),
            SnapshotError::Malformed { section, reason } => {
                write!(f, "malformed `{section}` section: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}
