//! The snapshot container: magic, version, section table, checksums.
//!
//! This module implements the normative layout documented in
//! `docs/FORMAT.md`:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "AHSNAP\r\n"
//! 8       2     format version (u16 LE)
//! 10      2     section count  (u16 LE)
//! 12      4     reserved (zero)
//! 16      32×k  section table: tag[8] | offset u64 | len u64 | crc64 u64
//! 16+32k  8     crc64 of bytes [0, 16+32k)
//! …       …     section payloads, each starting on an 8-byte boundary
//! ```
//!
//! The magic embeds `\r\n` (the PNG trick) so ASCII-mode transfers that
//! rewrite line endings are caught by the very first check. Per-section
//! CRC-64 checksums (see [`crate::crc`]) are verified *before* any payload
//! byte is interpreted; the table itself is covered by a trailing CRC so a
//! damaged offset can never point a reader at the wrong bytes.

use crate::crc::crc64;
use crate::error::SnapshotError;

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"AHSNAP\r\n";

/// Current format version. Any layout change — field order, element
/// encoding, section semantics — must bump this, and loaders refuse files
/// with a newer version than they understand.
///
/// History: **1** graph/AH/CH sections; **2** adds the sharded-snapshot
/// sections (`shards` metadata + one `shardNNN` AH payload per
/// non-empty shard); **3** adds the hub-labeling section (`labels`) with
/// its new 24-byte label-entry element encoding and cross-section
/// semantics (a labels-backed server answers paths from the `ah.index`
/// section); **4** adds the weight-delta section (`delta`): incremental
/// edge re-weights (closures as `u32::MAX` weight) against a named base
/// graph, cross-checked on load against the `graph` section's content
/// id. Files of versions 1–3 remain loadable.
pub const VERSION: u16 = 4;

/// Fixed header bytes before the section table.
pub const HEADER_LEN: usize = 16;

/// Bytes per section-table entry.
pub const TABLE_ENTRY_LEN: usize = 32;

/// An eight-byte ASCII section identifier, NUL-padded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SectionTag(pub [u8; 8]);

impl SectionTag {
    /// The road network (`ah_graph::Graph`).
    pub const GRAPH: SectionTag = SectionTag(*b"graph\0\0\0");
    /// The Arterial Hierarchy index (`ah_core::AhIndex`).
    pub const AH: SectionTag = SectionTag(*b"ah.index");
    /// The Contraction Hierarchies index (`ah_ch::ChIndex`).
    pub const CH: SectionTag = SectionTag(*b"ch.index");
    /// Sharded-snapshot metadata (`ah_shard::ShardedIndex`): shard
    /// count, certification flag, boundary matrix, reentry pairs.
    pub const SHARDS: SectionTag = SectionTag(*b"shards\0\0");
    /// The hub-labeling index (`ah_labels::LabelIndex`), format v3.
    pub const LABELS: SectionTag = SectionTag(*b"labels\0\0");
    /// The incremental weight delta (`ah_graph::WeightDelta`), format
    /// v4: edge re-weights against a named base graph.
    pub const DELTA: SectionTag = SectionTag(*b"delta\0\0\0");

    /// The per-shard AH index section for shard `slot`
    /// (`shard000` … `shard255`; payload encoding identical to
    /// [`SectionTag::AH`]). Empty shards have no section.
    ///
    /// # Panics
    /// Panics if `slot` exceeds 255 (`ah_shard::MAX_SHARDS` keeps real
    /// indexes below this).
    pub fn shard_slot(slot: usize) -> SectionTag {
        assert!(slot < 256, "shard slot {slot} out of tag range");
        let mut tag = *b"shard\0\0\0";
        tag[5] = b'0' + (slot / 100) as u8;
        tag[6] = b'0' + (slot / 10 % 10) as u8;
        tag[7] = b'0' + (slot % 10) as u8;
        SectionTag(tag)
    }
}

impl std::fmt::Display for SectionTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &b in self.0.iter().take_while(|&&b| b != 0) {
            write!(f, "{}", b as char)?;
        }
        Ok(())
    }
}

/// One parsed section-table entry.
#[derive(Debug, Clone, Copy)]
pub struct SectionEntry {
    /// Section identifier.
    pub tag: SectionTag,
    /// Absolute payload offset (8-aligned).
    pub offset: u64,
    /// Payload length in bytes (excluding inter-section padding).
    pub len: u64,
    /// CRC-64/XZ of the payload bytes.
    pub crc: u64,
}

/// Assembles a snapshot container in memory.
#[derive(Default)]
pub struct ContainerWriter {
    sections: Vec<(SectionTag, Vec<u8>)>,
}

impl ContainerWriter {
    /// Starts an empty container.
    pub fn new() -> Self {
        ContainerWriter::default()
    }

    /// Appends one section. Order is preserved in the file.
    pub fn add_section(&mut self, tag: SectionTag, payload: Vec<u8>) {
        debug_assert!(
            !self.sections.iter().any(|(t, _)| *t == tag),
            "duplicate section {tag}"
        );
        self.sections.push((tag, payload));
    }

    /// Produces the complete file image: header, table, table CRC,
    /// padded payloads.
    pub fn finish(self) -> Vec<u8> {
        let count = self.sections.len();
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * count;
        // Trailing table CRC keeps the first payload 8-aligned:
        // 16 + 32k + 8 ≡ 0 (mod 8).
        let mut cursor = (table_end + 8) as u64;
        let mut entries = Vec::with_capacity(count);
        for (tag, payload) in &self.sections {
            entries.push(SectionEntry {
                tag: *tag,
                offset: cursor,
                len: payload.len() as u64,
                crc: crc64(payload),
            });
            cursor += payload.len() as u64;
            cursor = cursor.next_multiple_of(8);
        }

        let mut out = Vec::with_capacity(cursor as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(count as u16).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        for e in &entries {
            out.extend_from_slice(&e.tag.0);
            out.extend_from_slice(&e.offset.to_le_bytes());
            out.extend_from_slice(&e.len.to_le_bytes());
            out.extend_from_slice(&e.crc.to_le_bytes());
        }
        let table_crc = crc64(&out);
        out.extend_from_slice(&table_crc.to_le_bytes());
        for (entry, (_, payload)) in entries.iter().zip(&self.sections) {
            debug_assert_eq!(out.len() as u64, entry.offset);
            out.extend_from_slice(payload);
            while out.len() % 8 != 0 {
                out.push(0);
            }
        }
        out
    }
}

/// A parsed, checksum-verified container over a byte buffer.
pub struct Container<'a> {
    data: &'a [u8],
    entries: Vec<SectionEntry>,
}

impl<'a> Container<'a> {
    /// Parses and fully verifies a container: magic, version, table CRC,
    /// section bounds and every section's payload CRC. After `parse`
    /// succeeds, section payloads can be handed to decoders without
    /// further integrity concerns.
    pub fn parse(data: &'a [u8]) -> Result<Self, SnapshotError> {
        let need = |n: u64| -> Result<(), SnapshotError> {
            if (data.len() as u64) < n {
                Err(SnapshotError::Truncated {
                    needed: n,
                    available: data.len() as u64,
                })
            } else {
                Ok(())
            }
        };
        need(HEADER_LEN as u64)?;
        if data[0..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes(data[8..10].try_into().unwrap());
        // Versions start at 1; 0 has never existed, so it is just as
        // unreadable as a future version.
        if version == 0 || version > VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let count = u16::from_le_bytes(data[10..12].try_into().unwrap()) as usize;
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * count;
        need((table_end + 8) as u64)?;
        let stored_table_crc =
            u64::from_le_bytes(data[table_end..table_end + 8].try_into().unwrap());
        if crc64(&data[..table_end]) != stored_table_crc {
            return Err(SnapshotError::TableChecksumMismatch);
        }

        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let at = HEADER_LEN + i * TABLE_ENTRY_LEN;
            let e = SectionEntry {
                tag: SectionTag(data[at..at + 8].try_into().unwrap()),
                offset: u64::from_le_bytes(data[at + 8..at + 16].try_into().unwrap()),
                len: u64::from_le_bytes(data[at + 16..at + 24].try_into().unwrap()),
                crc: u64::from_le_bytes(data[at + 24..at + 32].try_into().unwrap()),
            };
            if entries.iter().any(|p: &SectionEntry| p.tag == e.tag) {
                return Err(SnapshotError::DuplicateSection { section: e.tag });
            }
            if e.offset % 8 != 0 {
                return Err(SnapshotError::BadLayout("section offset not 8-aligned"));
            }
            if e.offset < (table_end + 8) as u64 {
                return Err(SnapshotError::BadLayout("section overlaps the header"));
            }
            let end = e
                .offset
                .checked_add(e.len)
                .ok_or(SnapshotError::BadLayout("section range overflows"))?;
            need(end)?;
            let payload = &data[e.offset as usize..end as usize];
            if crc64(payload) != e.crc {
                return Err(SnapshotError::SectionChecksumMismatch { section: e.tag });
            }
            entries.push(e);
        }
        // No two sections may share bytes: a forged table aliasing one
        // payload under two tags is rejected even though each range's
        // checksum verifies.
        let mut ranges: Vec<(u64, u64)> = entries.iter().map(|e| (e.offset, e.len)).collect();
        ranges.sort_unstable();
        if ranges
            .windows(2)
            .any(|w| w[0].0 + w[0].1 > w[1].0)
        {
            return Err(SnapshotError::BadLayout("section ranges overlap"));
        }
        Ok(Container { data, entries })
    }

    /// The verified payload of `tag`, if present.
    pub fn section(&self, tag: SectionTag) -> Option<&'a [u8]> {
        self.entries
            .iter()
            .find(|e| e.tag == tag)
            .map(|e| &self.data[e.offset as usize..(e.offset + e.len) as usize])
    }

    /// The parsed section table (spec tooling and tests).
    pub fn entries(&self) -> &[SectionEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_section_image() -> Vec<u8> {
        let mut w = ContainerWriter::new();
        w.add_section(SectionTag::GRAPH, vec![1, 2, 3]);
        w.add_section(SectionTag::AH, vec![4; 16]);
        w.finish()
    }

    #[test]
    fn writer_parser_roundtrip() {
        let img = two_section_image();
        let c = Container::parse(&img).unwrap();
        assert_eq!(c.section(SectionTag::GRAPH).unwrap(), &[1, 2, 3]);
        assert_eq!(c.section(SectionTag::AH).unwrap(), &[4; 16]);
        assert!(c.section(SectionTag::CH).is_none());
        for e in c.entries() {
            assert_eq!(e.offset % 8, 0, "section {} misaligned", e.tag);
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut img = two_section_image();
        img[0] ^= 0xFF;
        assert!(matches!(
            Container::parse(&img),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn newline_translation_detected() {
        // An ASCII-mode transfer turning \r\n into \n shifts every byte;
        // the magic check alone must catch it.
        let img = two_section_image();
        let mangled: Vec<u8> = {
            let mut out = Vec::new();
            let mut i = 0;
            while i < img.len() {
                if img[i] == b'\r' && img.get(i + 1) == Some(&b'\n') {
                    out.push(b'\n');
                    i += 2;
                } else {
                    out.push(img[i]);
                    i += 1;
                }
            }
            out
        };
        assert!(matches!(
            Container::parse(&mangled),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn future_version_refused() {
        let mut img = two_section_image();
        img[8..10].copy_from_slice(&(VERSION + 1).to_le_bytes());
        // The version bump also breaks the table CRC; patch it so the
        // version check is what fires.
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * 2;
        let crc = crc64(&img[..table_end]).to_le_bytes();
        img[table_end..table_end + 8].copy_from_slice(&crc);
        assert!(matches!(
            Container::parse(&img),
            Err(SnapshotError::UnsupportedVersion { found, .. }) if found == VERSION + 1
        ));
    }

    #[test]
    fn version_zero_refused() {
        let mut img = two_section_image();
        img[8..10].copy_from_slice(&0u16.to_le_bytes());
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * 2;
        let crc = crc64(&img[..table_end]).to_le_bytes();
        img[table_end..table_end + 8].copy_from_slice(&crc);
        assert!(matches!(
            Container::parse(&img),
            Err(SnapshotError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn table_corruption_detected() {
        let mut img = two_section_image();
        img[HEADER_LEN + 9] ^= 0x01; // an offset byte in entry 0
        assert!(matches!(
            Container::parse(&img),
            Err(SnapshotError::TableChecksumMismatch)
        ));
    }

    #[test]
    fn payload_corruption_detected() {
        let mut img = two_section_image();
        let last = img.len() - 4; // inside the second payload
        img[last] ^= 0x40;
        assert!(matches!(
            Container::parse(&img),
            Err(SnapshotError::SectionChecksumMismatch { section }) if section == SectionTag::AH
        ));
    }

    #[test]
    fn overlapping_sections_rejected() {
        // Forge a table whose second entry aliases the first payload,
        // with every checksum recomputed to verify — only the overlap
        // check can catch it.
        let mut img = two_section_image();
        let e0_off =
            u64::from_le_bytes(img[HEADER_LEN + 8..HEADER_LEN + 16].try_into().unwrap());
        let e0_len =
            u64::from_le_bytes(img[HEADER_LEN + 16..HEADER_LEN + 24].try_into().unwrap());
        let e1 = HEADER_LEN + TABLE_ENTRY_LEN;
        img[e1 + 8..e1 + 16].copy_from_slice(&e0_off.to_le_bytes());
        img[e1 + 16..e1 + 24].copy_from_slice(&e0_len.to_le_bytes());
        let payload_crc =
            crc64(&img[e0_off as usize..(e0_off + e0_len) as usize]).to_le_bytes();
        img[e1 + 24..e1 + 32].copy_from_slice(&payload_crc);
        let table_end = HEADER_LEN + TABLE_ENTRY_LEN * 2;
        let table_crc = crc64(&img[..table_end]).to_le_bytes();
        img[table_end..table_end + 8].copy_from_slice(&table_crc);
        assert!(matches!(
            Container::parse(&img),
            Err(SnapshotError::BadLayout(_))
        ));
    }

    #[test]
    fn every_truncation_point_is_typed() {
        let img = two_section_image();
        for cut in 0..img.len() {
            match Container::parse(&img[..cut]) {
                Err(
                    SnapshotError::Truncated { .. }
                    | SnapshotError::BadMagic
                    | SnapshotError::TableChecksumMismatch
                    | SnapshotError::SectionChecksumMismatch { .. },
                ) => {}
                Err(other) => panic!("cut at {cut}: unexpected error {other:?}"),
                Ok(_) => panic!("cut at {cut}: truncated file parsed"),
            }
        }
    }

    #[test]
    fn empty_container_roundtrips() {
        let img = ContainerWriter::new().finish();
        let c = Container::parse(&img).unwrap();
        assert!(c.entries().is_empty());
    }
}
