//! **Index snapshot persistence** — save built indexes to disk, reload
//! them in milliseconds instead of rebuilding for seconds.
//!
//! The paper's practical pitch (Section 6) is small indexes and fast
//! queries, but a real deployment restarts its servers far more often
//! than it reindexes its road data — the experimental methodology of Wu
//! et al. (VLDB 2012) treats (re)construction cost as a first-class axis
//! for exactly this reason. This crate closes that gap with a versioned
//! binary container holding any subset of:
//!
//! * the road network ([`ah_graph::Graph`]),
//! * the Arterial Hierarchy index ([`ah_core::AhIndex`]),
//! * the Contraction Hierarchies index ([`ah_ch::ChIndex`]),
//! * the hub-labeling index ([`ah_labels::LabelIndex`]),
//! * the region-sharded index ([`ah_shard::ShardedIndex`]).
//!
//! The on-disk layout — magic, version, section table, CRC-64 per
//! section, flat little-endian arrays — is specified normatively in
//! `docs/FORMAT.md`; the `format` and `encode` modules implement it.
//! Loads never panic: every failure mode (truncation, bit rot, version
//! skew, forged structure) maps to a typed [`SnapshotError`], and all
//! structural invariants are re-validated through the source crates'
//! checked constructors before an object is handed back.
//!
//! Writes are atomic (tmp file + rename), so a crash mid-write can never
//! leave a half-valid snapshot at the target path — the property
//! `ah_server`'s zero-downtime snapshot swap builds on.
//!
//! ```
//! use ah_core::{AhIndex, BuildConfig};
//! use ah_store::{Snapshot, SnapshotContents};
//!
//! let g = ah_data::fixtures::lattice(6, 6, 16);
//! let idx = AhIndex::build(&g, &BuildConfig::default());
//! let path = std::env::temp_dir().join("ah_store_doc.snap");
//!
//! Snapshot::write(&path, SnapshotContents::new().graph(&g).ah(&idx)).unwrap();
//! let loaded = Snapshot::load(&path).unwrap();
//! assert_eq!(loaded.ah.as_ref().unwrap().num_nodes(), idx.num_nodes());
//! # std::fs::remove_file(&path).ok();
//! ```

mod codec;
mod crc;
mod encode;
mod error;
mod format;

use std::path::Path;
use std::sync::Arc;

use ah_ch::ChIndex;
use ah_core::AhIndex;
use ah_graph::{Graph, WeightDelta};
use ah_labels::LabelIndex;
use ah_shard::ShardedIndex;

pub use crc::crc64;
pub use error::SnapshotError;
pub use format::{Container, ContainerWriter, SectionEntry, SectionTag, MAGIC, VERSION};

/// Borrowed selection of what one [`Snapshot::write`] call persists.
///
/// All components are optional; sections are written in the fixed order
/// graph, AH, CH, labels regardless of the order the setters were called
/// in.
#[derive(Default, Clone, Copy)]
pub struct SnapshotContents<'a> {
    graph: Option<&'a Graph>,
    ah: Option<&'a AhIndex>,
    ch: Option<&'a ChIndex>,
    labels: Option<&'a LabelIndex>,
    sharded: Option<&'a ShardedIndex>,
    delta: Option<&'a WeightDelta>,
}

impl<'a> SnapshotContents<'a> {
    /// Starts an empty selection.
    pub fn new() -> Self {
        SnapshotContents::default()
    }

    /// Includes the road network.
    pub fn graph(mut self, g: &'a Graph) -> Self {
        self.graph = Some(g);
        self
    }

    /// Includes the AH index.
    pub fn ah(mut self, idx: &'a AhIndex) -> Self {
        self.ah = Some(idx);
        self
    }

    /// Includes the CH index.
    pub fn ch(mut self, idx: &'a ChIndex) -> Self {
        self.ch = Some(idx);
        self
    }

    /// Includes the hub-labeling index (format v3 `labels` section).
    pub fn labels(mut self, idx: &'a LabelIndex) -> Self {
        self.labels = Some(idx);
        self
    }

    /// Includes the region-sharded index (format v2 sections: `shards`
    /// metadata + one `shardNNN` payload per non-empty shard).
    ///
    /// A sharded snapshot must also carry the graph — the decoder
    /// recomputes the partition skeleton from it — so
    /// [`SnapshotContents::graph`] is mandatory alongside this; the
    /// global AH section is taken from [`ShardedIndex::global`]
    /// automatically unless [`SnapshotContents::ah`] set one — which
    /// must be the very same object (asserted at encode time; see
    /// [`Snapshot::to_bytes`]).
    pub fn sharded(mut self, idx: &'a ShardedIndex) -> Self {
        self.sharded = Some(idx);
        self
    }

    /// Includes an incremental weight delta (format v4 `delta`
    /// section). When the graph section is also written,
    /// [`Snapshot::write`] refuses a delta whose base id does not name
    /// that graph ([`SnapshotError::DeltaBaseMismatch`]), and loaders
    /// re-check the same invariant.
    pub fn delta(mut self, delta: &'a WeightDelta) -> Self {
        self.delta = Some(delta);
        self
    }
}

/// A loaded snapshot: whichever of the three persistable objects the file
/// contained, fully decoded and validated.
#[derive(Default)]
pub struct Snapshot {
    /// The road network, if the file has a `graph` section.
    pub graph: Option<Graph>,
    /// The AH index, if the file has an `ah.index` section. Shared
    /// (`Arc`) because a sharded snapshot's [`ShardedIndex::global`]
    /// is this same decoded index — the payload is decoded once.
    pub ah: Option<Arc<AhIndex>>,
    /// The CH index, if the file has a `ch.index` section.
    pub ch: Option<ChIndex>,
    /// The hub-labeling index, if the file has a `labels` section.
    /// Shared (`Arc`) because serving backends hold it across worker
    /// threads the same way they hold the AH index.
    pub labels: Option<Arc<LabelIndex>>,
    /// The sharded index, if the file has a `shards` section (which
    /// requires the `graph` and `ah.index` sections to reassemble).
    pub sharded: Option<ShardedIndex>,
    /// The incremental weight delta, if the file has a `delta` section
    /// (format v4). When a graph section is present too, the delta's
    /// base id has been verified to name exactly that graph.
    pub delta: Option<WeightDelta>,
}

impl Snapshot {
    /// Serializes `contents` to `path` atomically and durably: written
    /// to a sibling temporary file, `fsync`ed, renamed over the target,
    /// and the parent directory synced (where the platform allows) so
    /// neither a process crash nor a power loss can leave a truncated
    /// file at the published path — the rename is only ever of
    /// fully-flushed bytes. Returns the snapshot size in bytes.
    pub fn write(path: impl AsRef<Path>, contents: SnapshotContents<'_>) -> Result<u64, SnapshotError> {
        use std::io::Write;
        let path = path.as_ref();
        if contents.sharded.is_some() && contents.graph.is_none() {
            return Err(SnapshotError::MissingSection {
                section: SectionTag::GRAPH,
            });
        }
        if let (Some(delta), Some(graph)) = (contents.delta, contents.graph) {
            let found = graph.content_id();
            if delta.base_id() != found {
                return Err(SnapshotError::DeltaBaseMismatch {
                    expected: delta.base_id(),
                    found,
                });
            }
        }
        let bytes = Self::to_bytes(contents);
        // Append ".tmp" to the *full* file name (never replace the
        // extension): targets differing only in extension must not
        // collide on one tmp file.
        let tmp = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable. Directory fsync is a Unix
        // notion; elsewhere (and on filesystems that refuse it) the
        // rename's durability is best-effort, so errors are ignored.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(bytes.len() as u64)
    }

    /// Serializes `contents` to an in-memory file image.
    ///
    /// # Panics
    /// Panics if a sharded index is included without the graph it was
    /// built from (the decoder cannot reassemble the partition without
    /// it) — [`Snapshot::write`] surfaces that condition as a typed
    /// error instead — or if an explicitly set AH index is a *different
    /// object* than the sharded index's global (the file has one
    /// `ah.index` section, and the decoder reuses it as the sharded
    /// global; silently writing one of two disagreeing indexes would
    /// corrupt fallback and path answers on load).
    pub fn to_bytes(contents: SnapshotContents<'_>) -> Vec<u8> {
        let mut w = format::ContainerWriter::new();
        if let Some(g) = contents.graph {
            w.add_section(SectionTag::GRAPH, encode::encode_graph(g));
        }
        if let Some(idx) = contents.ah {
            if let Some(sh) = contents.sharded {
                assert!(
                    std::ptr::eq(idx, sh.global().as_ref()),
                    "SnapshotContents::ah must be the sharded index's own global \
                     (or be left unset so it is included automatically)"
                );
            }
            w.add_section(SectionTag::AH, encode::encode_ah(idx));
        } else if let Some(sh) = contents.sharded {
            // A sharded snapshot always carries its global index.
            w.add_section(SectionTag::AH, encode::encode_ah(sh.global()));
        }
        if let Some(idx) = contents.ch {
            w.add_section(SectionTag::CH, encode::encode_ch(idx));
        }
        if let Some(idx) = contents.labels {
            w.add_section(SectionTag::LABELS, encode::encode_labels(idx));
        }
        if let Some(delta) = contents.delta {
            w.add_section(SectionTag::DELTA, encode::encode_delta(delta));
        }
        if let Some(sh) = contents.sharded {
            assert!(
                contents.graph.is_some(),
                "a sharded snapshot must include the graph section"
            );
            for (tag, payload) in encode::encode_shard_sections(sh) {
                w.add_section(tag, payload);
            }
        }
        w.finish()
    }

    /// Reads and fully verifies the snapshot at `path`.
    pub fn load(path: impl AsRef<Path>) -> Result<Snapshot, SnapshotError> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
    }

    /// Loads *only* the AH index from the snapshot at `path`.
    ///
    /// Every section's checksum is still verified (that is container
    /// parsing, and cheap), but the graph and CH payloads are not
    /// decoded or validated — the restart path a server cares about
    /// pays only for the section it serves from.
    pub fn load_ah(path: impl AsRef<Path>) -> Result<AhIndex, SnapshotError> {
        let bytes = std::fs::read(path)?;
        let container = format::Container::parse(&bytes)?;
        let section = container
            .section(SectionTag::AH)
            .ok_or(SnapshotError::MissingSection {
                section: SectionTag::AH,
            })?;
        encode::decode_ah(section)
    }

    /// Decodes a snapshot from an in-memory file image. Unknown sections
    /// are ignored (after their checksums verify), so same-version files
    /// written by extended tooling stay loadable.
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let container = format::Container::parse(bytes)?;
        let graph = container
            .section(SectionTag::GRAPH)
            .map(encode::decode_graph)
            .transpose()?;
        let ah = container
            .section(SectionTag::AH)
            .map(encode::decode_ah)
            .transpose()?
            .map(Arc::new);
        let ch = container
            .section(SectionTag::CH)
            .map(encode::decode_ch)
            .transpose()?;
        let labels = container
            .section(SectionTag::LABELS)
            .map(encode::decode_labels)
            .transpose()?
            .map(Arc::new);
        let delta = container
            .section(SectionTag::DELTA)
            .map(encode::decode_delta)
            .transpose()?;
        if let (Some(d), Some(g)) = (&delta, &graph) {
            let found = g.content_id();
            if d.base_id() != found {
                return Err(SnapshotError::DeltaBaseMismatch {
                    expected: d.base_id(),
                    found,
                });
            }
        }
        let sharded = if container.section(SectionTag::SHARDS).is_some() {
            Some(Self::decode_sharded_from(
                &container,
                graph.as_ref(),
                ah.clone(),
            )?)
        } else {
            None
        };
        Ok(Snapshot {
            graph,
            ah,
            ch,
            labels,
            sharded,
            delta,
        })
    }

    /// Loads *only* the weight delta from the snapshot at `path`
    /// (checksums of every section still verify; other payloads are not
    /// decoded). The base-graph cross-check is *not* run here — the
    /// caller applies the delta against its live graph, and
    /// `ah_graph::WeightDelta::apply` re-checks the base id there.
    pub fn load_delta(path: impl AsRef<Path>) -> Result<WeightDelta, SnapshotError> {
        let bytes = std::fs::read(path)?;
        let container = format::Container::parse(&bytes)?;
        let section = container
            .section(SectionTag::DELTA)
            .ok_or(SnapshotError::MissingSection {
                section: SectionTag::DELTA,
            })?;
        encode::decode_delta(section)
    }

    /// Loads *only* the sharded index (graph + global AH + shard
    /// sections) from the snapshot at `path`, skipping the CH payload —
    /// the restart path of a sharded server.
    pub fn load_sharded(path: impl AsRef<Path>) -> Result<ShardedIndex, SnapshotError> {
        let bytes = std::fs::read(path)?;
        let container = format::Container::parse(&bytes)?;
        let graph = container
            .section(SectionTag::GRAPH)
            .map(encode::decode_graph)
            .transpose()?;
        let global = container
            .section(SectionTag::AH)
            .map(encode::decode_ah)
            .transpose()?
            .map(Arc::new);
        Self::decode_sharded_from(&container, graph.as_ref(), global)
    }

    /// Shared sharded-section decode: requires the graph and the global
    /// AH index, both already decoded by the caller (the sharded index
    /// shares the same `Arc` as [`Snapshot::ah`], so the dominant AH
    /// payload is decoded exactly once per load).
    fn decode_sharded_from(
        container: &format::Container<'_>,
        graph: Option<&Graph>,
        global: Option<Arc<AhIndex>>,
    ) -> Result<ShardedIndex, SnapshotError> {
        let graph = graph.ok_or(SnapshotError::MissingSection {
            section: SectionTag::GRAPH,
        })?;
        let global = global.ok_or(SnapshotError::MissingSection {
            section: SectionTag::AH,
        })?;
        encode::decode_sharded(container, graph, global)
    }

    /// The AH index, or [`SnapshotError::MissingSection`].
    pub fn require_ah(self) -> Result<Arc<AhIndex>, SnapshotError> {
        self.ah.ok_or(SnapshotError::MissingSection {
            section: SectionTag::AH,
        })
    }

    /// The CH index, or [`SnapshotError::MissingSection`].
    pub fn require_ch(self) -> Result<ChIndex, SnapshotError> {
        self.ch.ok_or(SnapshotError::MissingSection {
            section: SectionTag::CH,
        })
    }

    /// The hub-labeling index, or [`SnapshotError::MissingSection`].
    pub fn require_labels(self) -> Result<Arc<LabelIndex>, SnapshotError> {
        self.labels.ok_or(SnapshotError::MissingSection {
            section: SectionTag::LABELS,
        })
    }

    /// The road network, or [`SnapshotError::MissingSection`].
    pub fn require_graph(self) -> Result<Graph, SnapshotError> {
        self.graph.ok_or(SnapshotError::MissingSection {
            section: SectionTag::GRAPH,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_core::BuildConfig;

    #[test]
    fn graph_roundtrips_in_memory() {
        let g = ah_data::fixtures::lattice(5, 4, 12);
        let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g));
        let loaded = Snapshot::from_bytes(&bytes).unwrap().require_graph().unwrap();
        assert_eq!(loaded.num_nodes(), g.num_nodes());
        assert_eq!(loaded.num_edges(), g.num_edges());
        for v in g.node_ids() {
            assert_eq!(loaded.out_edges(v), g.out_edges(v));
            assert_eq!(loaded.in_edges(v), g.in_edges(v));
            assert_eq!(loaded.coord(v), g.coord(v));
        }
    }

    #[test]
    fn ah_and_ch_roundtrip_with_identical_answers() {
        let g = ah_data::fixtures::lattice(8, 8, 14);
        let ah = AhIndex::build(&g, &BuildConfig::default());
        let ch = ah_ch::ChIndex::build(&g);
        let bytes = Snapshot::to_bytes(SnapshotContents::new().ah(&ah).ch(&ch));
        let loaded = Snapshot::from_bytes(&bytes).unwrap();
        let (ah2, ch2) = (loaded.ah.unwrap(), loaded.ch.unwrap());
        assert_eq!(ah2.stats(), ah.stats());
        assert_eq!(ch2.num_shortcuts(), ch.num_shortcuts());

        let mut q1 = ah_core::AhQuery::new();
        let mut q2 = ah_core::AhQuery::new();
        let mut c1 = ah_ch::ChQuery::new();
        let mut c2 = ah_ch::ChQuery::new();
        for s in (0..64).step_by(5) {
            for t in (0..64).step_by(7) {
                assert_eq!(
                    q2.distance_full(&ah2, s, t),
                    q1.distance_full(&ah, s, t),
                    "AH ({s},{t})"
                );
                assert_eq!(
                    c2.distance_full(&ch2, s, t),
                    c1.distance_full(&ch, s, t),
                    "CH ({s},{t})"
                );
            }
        }
    }

    #[test]
    fn labels_roundtrip_with_identical_answers() {
        let g = ah_data::fixtures::lattice(7, 7, 12);
        let ch = ah_ch::ChIndex::build(&g);
        let labels = ah_labels::LabelIndex::build(&g, ch.order());
        let bytes = Snapshot::to_bytes(SnapshotContents::new().labels(&labels));
        let loaded = Snapshot::from_bytes(&bytes).unwrap().require_labels().unwrap();
        assert_eq!(loaded.stats(), labels.stats());
        for s in (0..49).step_by(3) {
            for t in (0..49).step_by(5) {
                assert_eq!(
                    loaded.distance_full(s, t),
                    labels.distance_full(s, t),
                    "({s},{t})"
                );
            }
        }
    }

    #[test]
    fn missing_sections_are_typed() {
        let g = ah_data::fixtures::ring(6);
        let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g));
        let loaded = Snapshot::from_bytes(&bytes).unwrap();
        assert!(matches!(
            Snapshot::from_bytes(&bytes).unwrap().require_ah(),
            Err(SnapshotError::MissingSection { section }) if section == SectionTag::AH
        ));
        assert!(loaded.require_graph().is_ok());
    }

    #[test]
    fn write_is_atomic_and_loadable() {
        let g = ah_data::fixtures::lattice(4, 4, 10);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ah_store_atomic_{}.snap", std::process::id()));
        let size = Snapshot::write(&path, SnapshotContents::new().graph(&g)).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), size);
        let tmp = {
            let mut os = path.as_os_str().to_os_string();
            os.push(".tmp");
            std::path::PathBuf::from(os)
        };
        assert!(!tmp.exists(), "tmp renamed away");
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded.graph.unwrap().num_nodes(), g.num_nodes());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_roundtrips_with_identical_answers() {
        use ah_shard::{ShardConfig, ShardedIndex, ShardedQuery};
        let g = ah_data::fixtures::lattice(8, 8, 14);
        let sh = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: 4,
                ..Default::default()
            },
        );
        let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g).sharded(&sh));
        let loaded = Snapshot::from_bytes(&bytes).unwrap();
        // The auto-included global AH section decodes standalone too.
        assert_eq!(loaded.ah.as_ref().unwrap().num_nodes(), g.num_nodes());
        let sh2 = loaded.sharded.unwrap();
        assert_eq!(sh2.stats(), sh.stats());
        assert_eq!(sh2.border_nodes(), sh.border_nodes());
        assert_eq!(sh2.matrix(), sh.matrix());

        let mut q1 = ShardedQuery::new();
        let mut q2 = ShardedQuery::new();
        for s in (0..64).step_by(5) {
            for t in (0..64).step_by(7) {
                assert_eq!(q2.distance(&sh2, s, t), q1.distance(&sh, s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn sharded_snapshot_requires_the_graph_section() {
        use ah_shard::{ShardConfig, ShardedIndex};
        let g = ah_data::fixtures::lattice(5, 5, 10);
        let sh = ShardedIndex::build(&g, &ShardConfig::default());
        let path = std::env::temp_dir().join(format!(
            "ah_store_shard_nograph_{}.snap",
            std::process::id()
        ));
        assert!(matches!(
            Snapshot::write(&path, SnapshotContents::new().sharded(&sh)),
            Err(SnapshotError::MissingSection { section }) if section == SectionTag::GRAPH
        ));
        assert!(!path.exists());
    }

    #[test]
    fn forged_sharded_meta_is_rejected_typed() {
        use ah_shard::{ShardConfig, ShardedIndex};
        let g = ah_data::fixtures::lattice(6, 6, 12);
        let sh = ShardedIndex::build(
            &g,
            &ShardConfig {
                shards: 2,
                ..Default::default()
            },
        );
        // Re-pair the sharded sections with a graph of a *different
        // node count*: the skeleton recomputation must notice.
        let smaller = ah_data::fixtures::lattice(3, 3, 12);
        let mismatched =
            Snapshot::to_bytes(SnapshotContents::new().graph(&smaller).sharded(&sh));
        assert!(matches!(
            Snapshot::from_bytes(&mismatched),
            Err(SnapshotError::Malformed { section, .. }) if section == SectionTag::SHARDS
        ));
        // Same node count but moved geometry (spacing 20 vs 12): the
        // graph-derived partition drifts from the persisted one.
        let moved = ah_data::fixtures::lattice(6, 6, 20);
        let drifted =
            Snapshot::to_bytes(SnapshotContents::new().graph(&moved).sharded(&sh));
        assert!(
            Snapshot::from_bytes(&drifted).is_err(),
            "a drifted partition must not load silently"
        );
    }

    #[test]
    fn load_of_missing_file_is_io_error() {
        let err = match Snapshot::load("/nonexistent/definitely/not/here.snap") {
            Err(e) => e,
            Ok(_) => panic!("expected an I/O error"),
        };
        assert!(matches!(err, SnapshotError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
