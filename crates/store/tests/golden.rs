//! Golden-bytes test: pins the exact on-disk encoding of a tiny fixture.
//!
//! The hexdump below is the *same* worked example documented in
//! `docs/FORMAT.md`. If an encoder change breaks this test, the change is
//! a format change: bump `ah_store::VERSION`, update `docs/FORMAT.md`'s
//! spec and worked example, and regenerate the expected bytes here (run
//! the test with `--nocapture` after deleting the assertion to print the
//! new dump).

use ah_graph::{GraphBuilder, Point};
use ah_store::{Snapshot, SnapshotContents};

/// The fixture: two nodes at (0,0) and (3,4), one bidirectional edge of
/// weight 7 (two directed arcs with deterministic nuances).
fn tiny_graph() -> ah_graph::Graph {
    let mut b = GraphBuilder::new();
    let a = b.add_node(Point::new(0, 0));
    let c = b.add_node(Point::new(3, 4));
    b.add_bidirectional_edge(a, c, 7);
    b.build()
}

fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in bytes.chunks(16).enumerate() {
        out.push_str(&format!("{:08x} ", i * 16));
        for b in chunk {
            out.push_str(&format!(" {b:02x}"));
        }
        out.push('\n');
    }
    out
}

#[test]
fn tiny_fixture_bytes_are_stable() {
    let g = tiny_graph();
    let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g));
    let dump = hexdump(&bytes);
    println!("{dump}");

    let expected = "\
00000000  41 48 53 4e 41 50 0d 0a 03 00 01 00 00 00 00 00
00000010  67 72 61 70 68 00 00 00 38 00 00 00 00 00 00 00
00000020  90 00 00 00 00 00 00 00 17 57 bf 83 fb c6 2b ae
00000030  26 0c a1 4e 7f 42 e5 d4 02 00 00 00 00 00 00 00
00000040  03 00 00 00 00 00 00 00 00 00 00 00 01 00 00 00
00000050  02 00 00 00 00 00 00 00 02 00 00 00 00 00 00 00
00000060  01 00 00 00 07 00 00 00 6e a4 d1 00 00 00 00 00
00000070  07 00 00 00 cc 3b ef 00 03 00 00 00 00 00 00 00
00000080  00 00 00 00 01 00 00 00 02 00 00 00 00 00 00 00
00000090  02 00 00 00 00 00 00 00 01 00 00 00 07 00 00 00
000000a0  cc 3b ef 00 00 00 00 00 07 00 00 00 6e a4 d1 00
000000b0  02 00 00 00 00 00 00 00 00 00 00 00 00 00 00 00
000000c0  03 00 00 00 04 00 00 00
";
    assert_eq!(dump, expected, "on-disk encoding changed — see module docs");

    // And the canonical sanity check: those bytes load back.
    let loaded = Snapshot::from_bytes(&bytes).unwrap().require_graph().unwrap();
    assert_eq!(loaded.num_nodes(), 2);
    assert_eq!(loaded.edge_weight(0, 1), Some(7));
    assert_eq!(loaded.edge_weight(1, 0), Some(7));
}

/// Compatibility floor: the very same payload bytes stamped with the
/// previous format versions still load. The v3 bump added a section
/// (`labels`) and its element encoding; it changed nothing about the
/// sections v1/v2 writers produce, so their files must keep working.
#[test]
fn older_version_stamps_still_load() {
    let g = tiny_graph();
    let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g));
    for old in [1u16, 2] {
        let mut img = bytes.clone();
        img[8..10].copy_from_slice(&old.to_le_bytes());
        // Re-seal the table CRC the way an old writer would have.
        let count = u16::from_le_bytes(img[10..12].try_into().unwrap()) as usize;
        let table_end = 16 + 32 * count;
        let crc = ah_store::crc64(&img[..table_end]).to_le_bytes();
        img[table_end..table_end + 8].copy_from_slice(&crc);
        let loaded = Snapshot::from_bytes(&img)
            .unwrap_or_else(|e| panic!("v{old} file refused: {e}"))
            .require_graph()
            .unwrap();
        assert_eq!(loaded.num_nodes(), 2, "v{old} graph decoded differently");
    }
}
