//! Golden-bytes test: pins the exact on-disk encoding of a tiny fixture.
//!
//! The hexdump below is the *same* worked example documented in
//! `docs/FORMAT.md`. If an encoder change breaks this test, the change is
//! a format change: bump `ah_store::VERSION`, update `docs/FORMAT.md`'s
//! spec and worked example, and regenerate the expected bytes here (run
//! the test with `--nocapture` after deleting the assertion to print the
//! new dump).

use ah_graph::{GraphBuilder, Point};
use ah_store::{Snapshot, SnapshotContents};

/// The fixture: two nodes at (0,0) and (3,4), one bidirectional edge of
/// weight 7 (two directed arcs with deterministic nuances).
fn tiny_graph() -> ah_graph::Graph {
    let mut b = GraphBuilder::new();
    let a = b.add_node(Point::new(0, 0));
    let c = b.add_node(Point::new(3, 4));
    b.add_bidirectional_edge(a, c, 7);
    b.build()
}

fn hexdump(bytes: &[u8]) -> String {
    let mut out = String::new();
    for (i, chunk) in bytes.chunks(16).enumerate() {
        out.push_str(&format!("{:08x} ", i * 16));
        for b in chunk {
            out.push_str(&format!(" {b:02x}"));
        }
        out.push('\n');
    }
    out
}

#[test]
fn tiny_fixture_bytes_are_stable() {
    let g = tiny_graph();
    let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g));
    let dump = hexdump(&bytes);
    println!("{dump}");

    let expected = "\
00000000  41 48 53 4e 41 50 0d 0a 04 00 01 00 00 00 00 00
00000010  67 72 61 70 68 00 00 00 38 00 00 00 00 00 00 00
00000020  90 00 00 00 00 00 00 00 17 57 bf 83 fb c6 2b ae
00000030  0f 1d f6 a9 a1 7d 55 5a 02 00 00 00 00 00 00 00
00000040  03 00 00 00 00 00 00 00 00 00 00 00 01 00 00 00
00000050  02 00 00 00 00 00 00 00 02 00 00 00 00 00 00 00
00000060  01 00 00 00 07 00 00 00 6e a4 d1 00 00 00 00 00
00000070  07 00 00 00 cc 3b ef 00 03 00 00 00 00 00 00 00
00000080  00 00 00 00 01 00 00 00 02 00 00 00 00 00 00 00
00000090  02 00 00 00 00 00 00 00 01 00 00 00 07 00 00 00
000000a0  cc 3b ef 00 00 00 00 00 07 00 00 00 6e a4 d1 00
000000b0  02 00 00 00 00 00 00 00 00 00 00 00 00 00 00 00
000000c0  03 00 00 00 04 00 00 00
";
    assert_eq!(dump, expected, "on-disk encoding changed — see module docs");

    // And the canonical sanity check: those bytes load back.
    let loaded = Snapshot::from_bytes(&bytes).unwrap().require_graph().unwrap();
    assert_eq!(loaded.num_nodes(), 2);
    assert_eq!(loaded.edge_weight(0, 1), Some(7));
    assert_eq!(loaded.edge_weight(1, 0), Some(7));
}

/// The `delta` section of the same fixture, re-weighting the 0 → 1 arc
/// to 9 and closing 1 → 0: base content id, change count, then one
/// 16-byte record per change. This is the worked delta example in
/// `docs/FORMAT.md`.
#[test]
fn tiny_delta_bytes_are_stable() {
    use ah_graph::{WeightChange, WeightDelta};
    let g = tiny_graph();
    let delta = WeightDelta::new(
        &g,
        [WeightChange::new(0, 1, 9), WeightChange::close(1, 0)],
    )
    .unwrap();
    let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g).delta(&delta));
    let dump = hexdump(&bytes);
    println!("{dump}");

    let expected = "\
00000000  41 48 53 4e 41 50 0d 0a 04 00 02 00 00 00 00 00
00000010  67 72 61 70 68 00 00 00 58 00 00 00 00 00 00 00
00000020  90 00 00 00 00 00 00 00 17 57 bf 83 fb c6 2b ae
00000030  64 65 6c 74 61 00 00 00 e8 00 00 00 00 00 00 00
00000040  30 00 00 00 00 00 00 00 5b 45 6f 91 8c 85 65 3f
00000050  f5 4a 76 f5 cb dd 9e ff 02 00 00 00 00 00 00 00
00000060  03 00 00 00 00 00 00 00 00 00 00 00 01 00 00 00
00000070  02 00 00 00 00 00 00 00 02 00 00 00 00 00 00 00
00000080  01 00 00 00 07 00 00 00 6e a4 d1 00 00 00 00 00
00000090  07 00 00 00 cc 3b ef 00 03 00 00 00 00 00 00 00
000000a0  00 00 00 00 01 00 00 00 02 00 00 00 00 00 00 00
000000b0  02 00 00 00 00 00 00 00 01 00 00 00 07 00 00 00
000000c0  cc 3b ef 00 00 00 00 00 07 00 00 00 6e a4 d1 00
000000d0  02 00 00 00 00 00 00 00 00 00 00 00 00 00 00 00
000000e0  03 00 00 00 04 00 00 00 35 e4 96 d1 ce c2 17 35
000000f0  02 00 00 00 00 00 00 00 00 00 00 00 01 00 00 00
00000100  09 00 00 00 00 00 00 00 01 00 00 00 00 00 00 00
00000110  ff ff ff ff 00 00 00 00
";
    assert_eq!(dump, expected, "delta encoding changed — see module docs");

    let loaded = Snapshot::from_bytes(&bytes).unwrap();
    assert_eq!(loaded.delta.unwrap(), delta);
}

/// A single flipped bit anywhere in the delta payload is caught by the
/// section checksum and attributed to the `delta` section — a damaged
/// update feed can never patch live weights.
#[test]
fn delta_payload_bit_flip_is_detected() {
    use ah_graph::{WeightChange, WeightDelta};
    use ah_store::{SectionTag, SnapshotError};
    let g = tiny_graph();
    let delta = WeightDelta::new(&g, [WeightChange::close(0, 1)]).unwrap();
    let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g).delta(&delta));

    // The delta is the last section written, so the file's final byte
    // (a change record's nuance-free weight bytes) is inside it.
    let mut img = bytes.clone();
    *img.last_mut().unwrap() ^= 0x01;
    match Snapshot::from_bytes(&img).err() {
        Some(SnapshotError::SectionChecksumMismatch { section }) => {
            assert_eq!(section, SectionTag::DELTA, "damage must name the delta section");
        }
        other => panic!("corrupt delta accepted or mistyped: {other:?}"),
    }
}

/// A delta whose base id names a *different* graph than the snapshot's
/// own graph section is refused typed — by the writer up front, and by
/// the loader even when the payload checksums are deliberately
/// re-sealed (a forged file, not line noise).
#[test]
fn forged_delta_base_id_is_rejected_typed() {
    use ah_graph::{WeightChange, WeightDelta};
    use ah_store::{crc64, SnapshotError};
    let g = tiny_graph();
    let delta = WeightDelta::new(&g, [WeightChange::new(0, 1, 9)]).unwrap();

    // Writer: a delta cut against some other graph never hits disk.
    let mut other = GraphBuilder::new();
    let a = other.add_node(Point::new(0, 0));
    let c = other.add_node(Point::new(3, 4));
    other.add_bidirectional_edge(a, c, 8); // different weight → different id
    let other = other.build();
    let stale = WeightDelta::new(&other, [WeightChange::new(0, 1, 9)]).unwrap();
    let path = std::env::temp_dir().join(format!("ah_forged_base_{}.snap", std::process::id()));
    match Snapshot::write(&path, SnapshotContents::new().graph(&g).delta(&stale)) {
        Err(SnapshotError::DeltaBaseMismatch { expected, found }) => {
            assert_eq!(expected, other.content_id());
            assert_eq!(found, g.content_id());
        }
        other => panic!("mismatched base written or mistyped: {other:?}"),
    }
    std::fs::remove_file(&path).ok();

    // Loader: forge the base id in valid bytes and re-seal both the
    // section CRC and the table CRC, so only the cross-check can object.
    let mut img = Snapshot::to_bytes(SnapshotContents::new().graph(&g).delta(&delta));
    let count = u16::from_le_bytes(img[10..12].try_into().unwrap()) as usize;
    assert_eq!(count, 2, "fixture writes graph + delta");
    let entry = 16 + 32; // second table entry: the delta section
    let off = u64::from_le_bytes(img[entry + 8..entry + 16].try_into().unwrap()) as usize;
    let len = u64::from_le_bytes(img[entry + 16..entry + 24].try_into().unwrap()) as usize;
    let forged_id = 0xDEAD_BEEF_u64;
    img[off..off + 8].copy_from_slice(&forged_id.to_le_bytes());
    let section_crc = crc64(&img[off..off + len]).to_le_bytes();
    img[entry + 24..entry + 32].copy_from_slice(&section_crc);
    let table_end = 16 + 32 * count;
    let table_crc = crc64(&img[..table_end]).to_le_bytes();
    img[table_end..table_end + 8].copy_from_slice(&table_crc);
    match Snapshot::from_bytes(&img).err() {
        Some(SnapshotError::DeltaBaseMismatch { expected, found }) => {
            assert_eq!(expected, forged_id);
            assert_eq!(found, g.content_id());
        }
        other => panic!("forged base id accepted or mistyped: {other:?}"),
    }
}

/// Compatibility floor: the very same payload bytes stamped with the
/// previous format versions still load. The v4 bump added a section
/// (`delta`); it changed nothing about the sections v1–v3 writers
/// produce, so their files must keep working.
#[test]
fn older_version_stamps_still_load() {
    let g = tiny_graph();
    let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g));
    for old in [1u16, 2, 3] {
        let mut img = bytes.clone();
        img[8..10].copy_from_slice(&old.to_le_bytes());
        // Re-seal the table CRC the way an old writer would have.
        let count = u16::from_le_bytes(img[10..12].try_into().unwrap()) as usize;
        let table_end = 16 + 32 * count;
        let crc = ah_store::crc64(&img[..table_end]).to_le_bytes();
        img[table_end..table_end + 8].copy_from_slice(&crc);
        let loaded = Snapshot::from_bytes(&img)
            .unwrap_or_else(|e| panic!("v{old} file refused: {e}"))
            .require_graph()
            .unwrap();
        assert_eq!(loaded.num_nodes(), 2, "v{old} graph decoded differently");
    }
}
