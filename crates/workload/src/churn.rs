//! Weight churn for live-update benchmarks.
//!
//! A serving benchmark that only ever queries one frozen graph cannot
//! exercise the delta-reload pipeline. [`WeightChurn`] plans a
//! deterministic sequence of [`WeightDelta`]s — re-weights and road
//! closures — spaced evenly through a request stream, each cut against
//! the graph as patched by the rounds before it (the shape a live feed
//! of traffic updates takes). The driver replays the stream, fires each
//! round's delta at its `at` offset, and can hold the final answers to
//! the plan's [`ChurnPlan::final_graph`] for an exactness check.

use ah_graph::{Graph, NodeId, Weight, WeightChange, WeightDelta, CLOSED};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a churn stream perturbs edge weights.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightChurn {
    /// Number of deltas to emit.
    pub rounds: usize,
    /// Edges re-weighted per round (clamped to the graph's edge count).
    pub changes_per_round: usize,
    /// Fraction of changes that close the road ([`CLOSED`] weight)
    /// instead of re-weighting it (`0.0 ..= 1.0`). A later round may
    /// re-open a closed edge at a fresh weight.
    pub closure_fraction: f64,
    /// RNG seed; equal configurations over equal graphs yield equal
    /// plans.
    pub seed: u64,
}

impl WeightChurn {
    /// A churn resembling a live traffic feed: mostly congestion
    /// re-weights with an occasional closure.
    pub fn interactive(rounds: usize, changes_per_round: usize, seed: u64) -> Self {
        WeightChurn {
            rounds,
            changes_per_round,
            closure_fraction: 0.2,
            seed,
        }
    }

    /// Materializes the plan against `base`: one delta per round, each
    /// cut against the previous round's patched graph, fired at offsets
    /// spaced evenly through a stream of `total_requests` requests.
    /// Returns an empty plan for edgeless graphs or zero-round churn.
    pub fn plan(&self, base: &Graph, total_requests: usize) -> ChurnPlan {
        let edges: Vec<(NodeId, NodeId, Weight)> = base
            .edges()
            .map(|(tail, arc)| (tail, arc.head, arc.weight))
            .collect();
        if edges.is_empty() || self.rounds == 0 || self.changes_per_round == 0 {
            return ChurnPlan {
                rounds: Vec::new(),
                final_graph: base.clone(),
            };
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xC0DE_C4A9_5EED_0011);
        let per_round = self.changes_per_round.min(edges.len());
        let mut current = base.clone();
        let mut rounds = Vec::with_capacity(self.rounds);
        for r in 0..self.rounds {
            let mut changes = Vec::with_capacity(per_round);
            for _ in 0..per_round {
                let (tail, head, w0) = edges[rng.random_range(0..edges.len())];
                // Scale off the *base* weight: the current weight may be
                // CLOSED from an earlier round, which would overflow.
                let change = if rng.random_bool(self.closure_fraction.clamp(0.0, 1.0)) {
                    WeightChange::close(tail, head)
                } else {
                    let w0 = w0.min(Weight::MAX / 4).max(1);
                    WeightChange::new(tail, head, rng.random_range(1..=w0 * 3))
                };
                changes.push(change);
            }
            // Duplicate edges collapse to the last change; construction
            // cannot fail because churn never invents edges.
            let delta = WeightDelta::new(&current, changes)
                .expect("churn only re-weights edges the base graph has");
            current = delta
                .apply(&current)
                .expect("delta was cut against this graph")
                .graph;
            let at = (r + 1) * total_requests / (self.rounds + 1);
            rounds.push(ChurnRound { at, delta });
        }
        ChurnPlan {
            rounds,
            final_graph: current,
        }
    }
}

/// One planned reload: fire `delta` once `at` requests have been served.
#[derive(Debug, Clone)]
pub struct ChurnRound {
    /// Request offset in the stream at which this round fires.
    pub at: usize,
    /// The delta to apply — cut against the graph as patched by every
    /// earlier round.
    pub delta: WeightDelta,
}

/// A materialized churn: the rounds in firing order plus the graph all
/// of them compose to (the exactness oracle for post-churn answers).
#[derive(Debug, Clone)]
pub struct ChurnPlan {
    /// Rounds in firing order, `at` ascending.
    pub rounds: Vec<ChurnRound>,
    /// `base` with every round applied, bit-identical to a from-scratch
    /// rebuild at the final weights.
    pub final_graph: Graph,
}

impl ChurnPlan {
    /// Total number of individual edge changes across all rounds.
    pub fn total_changes(&self) -> usize {
        self.rounds.iter().map(|r| r.delta.len()).sum()
    }

    /// How many of those changes are closures.
    pub fn closures(&self) -> usize {
        self.rounds
            .iter()
            .flat_map(|r| r.delta.changes())
            .filter(|c| c.weight == CLOSED)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Graph {
        ah_data::fixtures::lattice(8, 8, 10)
    }

    #[test]
    fn plans_are_deterministic_in_the_seed() {
        let g = base();
        let churn = WeightChurn::interactive(4, 6, 77);
        let a = churn.plan(&g, 1000);
        let b = churn.plan(&g, 1000);
        assert_eq!(a.rounds.len(), 4);
        for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(ra.at, rb.at);
            assert_eq!(ra.delta, rb.delta);
        }
        assert_eq!(a.final_graph.content_id(), b.final_graph.content_id());
        let c = WeightChurn::interactive(4, 6, 78).plan(&g, 1000);
        assert_ne!(a.final_graph.content_id(), c.final_graph.content_id());
    }

    #[test]
    fn rounds_chain_their_base_graphs() {
        let g = base();
        let plan = WeightChurn::interactive(5, 4, 3).plan(&g, 500);
        let mut cur = g;
        for round in &plan.rounds {
            assert_eq!(round.delta.base_id(), cur.content_id());
            cur = round.delta.apply(&cur).unwrap().graph;
        }
        assert_eq!(cur.content_id(), plan.final_graph.content_id());
    }

    #[test]
    fn fire_points_are_spaced_and_ascending() {
        let g = base();
        let plan = WeightChurn::interactive(3, 2, 9).plan(&g, 400);
        let ats: Vec<usize> = plan.rounds.iter().map(|r| r.at).collect();
        assert_eq!(ats, vec![100, 200, 300]);
    }

    #[test]
    fn closure_fraction_produces_closures_and_zero_suppresses_them() {
        let g = base();
        let heavy = WeightChurn {
            closure_fraction: 1.0,
            ..WeightChurn::interactive(2, 8, 5)
        }
        .plan(&g, 100);
        assert_eq!(heavy.closures(), heavy.total_changes());
        let none = WeightChurn {
            closure_fraction: 0.0,
            ..WeightChurn::interactive(2, 8, 5)
        }
        .plan(&g, 100);
        assert_eq!(none.closures(), 0);
        assert!(none.total_changes() > 0);
    }

    #[test]
    fn degenerate_inputs_yield_empty_plans() {
        let g = base();
        assert!(WeightChurn::interactive(0, 4, 1).plan(&g, 100).rounds.is_empty());
        let plan = WeightChurn::interactive(3, 0, 1).plan(&g, 100);
        assert!(plan.rounds.is_empty());
        assert_eq!(plan.final_graph.content_id(), g.content_id());
    }
}
