//! Query workloads and experiment plumbing (paper Section 6.1).
//!
//! The paper evaluates with ten query sets `Q1 … Q10` per dataset: each
//! `Qi` holds source–target pairs whose network distance lies in
//! `[2^(i-11)·lmax, 2^(i-10)·lmax)`, where `lmax` estimates the maximum
//! network distance of the dataset — so `Q1` holds neighbourhood queries
//! and `Q10` cross-country ones. This crate generates those sets
//! ([`generate_query_sets`]), estimates `lmax` ([`estimate_lmax`]), and
//! provides the timing/record plumbing the figure binaries share.

mod churn;
mod traffic;

pub use churn::{ChurnPlan, ChurnRound, WeightChurn};
pub use traffic::{ScenarioOp, TrafficSchedule};

use ah_graph::{Graph, NodeId};
use ah_search::{DijkstraDriver, SearchOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One of the paper's distance-stratified query sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySet {
    /// Set number `1..=10` (the paper's `Qi`).
    pub index: u32,
    /// Distance range `[lo, hi)` this set draws from.
    pub lo: u64,
    /// Exclusive upper bound of the range.
    pub hi: u64,
    /// The query pairs.
    pub pairs: Vec<(NodeId, NodeId)>,
}

/// Estimates the maximum network distance `lmax` with the classic double
/// sweep: Dijkstra from a seed node to its farthest reachable node, then
/// from there again; the largest distance seen is the estimate.
pub fn estimate_lmax(g: &Graph, seed: u64) -> u64 {
    if g.num_nodes() == 0 {
        return 0;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut driver = DijkstraDriver::new();
    let mut best = 0u64;
    let mut source = rng.random_range(0..g.num_nodes() as NodeId);
    for _ in 0..2 {
        driver.run(g, source, &SearchOptions::default(), |_| true);
        let mut far = source;
        for v in g.node_ids() {
            let d = driver.dist(v);
            if !d.is_infinite() && d.length > best {
                best = d.length;
                far = v;
            }
        }
        source = far;
    }
    best
}

/// Generates the ten query sets. Each set receives up to `pairs_per_set`
/// pairs; sets whose distance range is not realized in the network (tiny
/// graphs) may come back smaller. Deterministic in `seed`.
///
/// Strategy: sample random sources, compute their full shortest-path
/// trees, and bucket reachable targets by distance range, drawing a few
/// pairs per source so no single source dominates a set.
pub fn generate_query_sets(g: &Graph, pairs_per_set: usize, seed: u64) -> Vec<QuerySet> {
    let lmax = estimate_lmax(g, seed ^ 0x51AB);
    let mut sets: Vec<QuerySet> = (1..=10)
        .map(|i| {
            // [2^(i-11) lmax, 2^(i-10) lmax)
            let lo = lmax >> (11 - i);
            let hi = lmax >> (10 - i);
            QuerySet {
                index: i as u32,
                lo,
                hi: if i == 10 { hi + 1 } else { hi },
                pairs: Vec::new(),
            }
        })
        .collect();
    let n = g.num_nodes();
    if n < 2 || lmax == 0 {
        return sets;
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut driver = DijkstraDriver::new();
    // Cap per (source, set) so pairs spread over many sources.
    let per_source_cap = (pairs_per_set / 16).max(4);
    let max_sources = (n * 4).max(512);

    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); 10];
    for _ in 0..max_sources {
        if sets.iter().all(|s| s.pairs.len() >= pairs_per_set) {
            break;
        }
        let s = rng.random_range(0..n as NodeId);
        driver.run(g, s, &SearchOptions::default(), |_| true);
        for b in &mut buckets {
            b.clear();
        }
        for t in g.node_ids() {
            if t == s {
                continue;
            }
            let d = driver.dist(t);
            if d.is_infinite() {
                continue;
            }
            for (i, set) in sets.iter().enumerate() {
                if d.length >= set.lo && d.length < set.hi {
                    buckets[i].push(t);
                    break;
                }
            }
        }
        for (i, bucket) in buckets.iter_mut().enumerate() {
            if sets[i].pairs.len() >= pairs_per_set || bucket.is_empty() {
                continue;
            }
            // Fisher–Yates prefix shuffle for an unbiased sample.
            let take = per_source_cap
                .min(bucket.len())
                .min(pairs_per_set - sets[i].pairs.len());
            for k in 0..take {
                let j = rng.random_range(k..bucket.len());
                bucket.swap(k, j);
                sets[i].pairs.push((s, bucket[k]));
            }
        }
    }
    sets
}

/// Measures the average wall-clock microseconds per invocation of `f` over
/// `iterations` calls (after `warmup` unmeasured calls).
pub fn time_per_call_us(warmup: usize, iterations: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..warmup {
        f();
    }
    let start = std::time::Instant::now();
    for _ in 0..iterations {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iterations.max(1) as f64
}

/// One measurement row of a figure series (serialized by the harness into
/// the experiment log).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct SeriesRecord {
    /// Dataset name (`S0` …).
    pub dataset: String,
    /// Number of nodes of the dataset.
    pub nodes: usize,
    /// Method name (`AH`, `CH`, `SILC`, `Dijkstra`, `FC`).
    pub method: String,
    /// Query set `Q1..Q10` (0 for non-query experiments).
    pub query_set: u32,
    /// Average microseconds per query (or seconds for preprocessing rows).
    pub value: f64,
    /// What `value` measures (`us/query`, `MB`, `s`).
    pub unit: String,
}

impl SeriesRecord {
    /// Renders the record as a TSV line (header via [`SeriesRecord::tsv_header`]).
    pub fn tsv_line(&self) -> String {
        format!(
            "{}\t{}\t{}\tQ{}\t{:.3}\t{}",
            self.dataset, self.nodes, self.method, self.query_set, self.value, self.unit
        )
    }

    /// TSV header matching [`SeriesRecord::tsv_line`].
    pub fn tsv_header() -> &'static str {
        "dataset\tnodes\tmethod\tquery_set\tvalue\tunit"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_data::fixtures;

    #[test]
    fn lmax_on_line() {
        // 10-node unit line: diameter 9.
        let g = fixtures::line(10, 5);
        assert_eq!(estimate_lmax(&g, 1), 9);
    }

    #[test]
    fn query_sets_respect_ranges() {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 20,
            height: 20,
            seed: 8,
            ..Default::default()
        });
        let sets = generate_query_sets(&g, 50, 9);
        assert_eq!(sets.len(), 10);
        let mut driver = DijkstraDriver::new();
        for set in &sets {
            for &(s, t) in &set.pairs {
                driver.run(&g, s, &SearchOptions::default(), |_| true);
                let d = driver.dist(t);
                assert!(!d.is_infinite());
                assert!(
                    d.length >= set.lo && d.length < set.hi,
                    "Q{}: dist {} outside [{}, {})",
                    set.index,
                    d.length,
                    set.lo,
                    set.hi
                );
            }
        }
        // Long-range sets must be populated on a 20×20 network.
        assert!(!sets[9].pairs.is_empty(), "Q10 empty");
        assert!(!sets[5].pairs.is_empty(), "Q6 empty");
    }

    #[test]
    fn query_sets_are_deterministic() {
        let g = fixtures::lattice(12, 12, 10);
        let a = generate_query_sets(&g, 20, 42);
        let b = generate_query_sets(&g, 20, 42);
        assert_eq!(a, b);
        let c = generate_query_sets(&g, 20, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn degenerate_graphs() {
        let empty = ah_graph::GraphBuilder::new().build();
        let sets = generate_query_sets(&empty, 10, 1);
        assert!(sets.iter().all(|s| s.pairs.is_empty()));
        assert_eq!(estimate_lmax(&empty, 1), 0);

        let single = fixtures::line(1, 1);
        let sets1 = generate_query_sets(&single, 10, 1);
        assert!(sets1.iter().all(|s| s.pairs.is_empty()));
    }

    #[test]
    fn timing_helper_runs() {
        let mut count = 0u64;
        let us = time_per_call_us(2, 10, || count += 1);
        assert_eq!(count, 12);
        assert!(us >= 0.0);
    }

    #[test]
    fn record_tsv() {
        let r = SeriesRecord {
            dataset: "S0".into(),
            nodes: 1000,
            method: "AH".into(),
            query_set: 3,
            value: 1.5,
            unit: "us/query".into(),
        };
        assert_eq!(r.tsv_line(), "S0\t1000\tAH\tQ3\t1.500\tus/query");
        assert!(SeriesRecord::tsv_header().starts_with("dataset"));
    }
}
