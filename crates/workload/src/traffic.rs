//! Serving-traffic streams over the paper's query sets.
//!
//! The figure binaries iterate each `Qi` in isolation; a serving benchmark
//! instead needs one *interleaved* request stream the way real traffic
//! arrives — neighbourhood and cross-country queries mixed, with repeats
//! (commuter pairs) that a distance cache can exploit. [`TrafficSchedule`]
//! turns the distance-stratified sets of [`crate::generate_query_sets`]
//! into such a stream, deterministically in the seed.

use ah_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::QuerySet;

/// How a traffic stream draws from the ten query sets.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSchedule {
    /// Total requests to emit.
    pub total: usize,
    /// Relative draw weight per query set (indexed `Q1 = 0` … `Q10 = 9`;
    /// sets with no pairs are skipped regardless of weight).
    pub weights: [f64; 10],
    /// Fraction of requests that repeat an earlier pair instead of drawing
    /// a fresh one (`0.0 ..= 1.0`) — the cache-locality knob. Repeats pick
    /// uniformly among previously issued pairs.
    pub repeat_fraction: f64,
    /// RNG seed; equal schedules over equal sets yield equal streams.
    pub seed: u64,
}

impl TrafficSchedule {
    /// An even mix over all ten sets with no repetition.
    pub fn uniform(total: usize, seed: u64) -> Self {
        TrafficSchedule {
            total,
            weights: [1.0; 10],
            repeat_fraction: 0.0,
            seed,
        }
    }

    /// A mix resembling interactive map traffic: mostly local queries
    /// (Q1–Q4), a tail of long-range ones, and `repeat_fraction` of
    /// popular-pair repeats.
    pub fn interactive(total: usize, repeat_fraction: f64, seed: u64) -> Self {
        TrafficSchedule {
            total,
            weights: [8.0, 8.0, 6.0, 6.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0],
            repeat_fraction: repeat_fraction.clamp(0.0, 1.0),
            seed,
        }
    }

    /// Materializes the request stream: `total` source–target pairs drawn
    /// from `sets` by weight. Returns an empty stream when every set is
    /// empty (degenerate graphs).
    pub fn generate(&self, sets: &[QuerySet]) -> Vec<(NodeId, NodeId)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7AFF_1C5E);
        // Cumulative integer weights (milli-units) over non-empty sets; the
        // vendored rand samples integer ranges only.
        let usable: Vec<usize> = (0..sets.len())
            .filter(|&i| {
                !sets[i].pairs.is_empty() && *self.weights.get(i).unwrap_or(&0.0) > 0.0
            })
            .collect();
        if usable.is_empty() || self.total == 0 {
            return Vec::new();
        }
        let mut cum: Vec<u64> = Vec::with_capacity(usable.len());
        let mut acc = 0u64;
        for &i in &usable {
            acc += ((self.weights[i] * 1000.0).round() as u64).max(1);
            cum.push(acc);
        }
        let mut stream: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.total);
        for _ in 0..self.total {
            if !stream.is_empty() && rng.random_bool(self.repeat_fraction) {
                let k = rng.random_range(0..stream.len());
                stream.push(stream[k]);
                continue;
            }
            let x = rng.random_range(0..acc);
            let slot = cum.partition_point(|&c| c <= x).min(usable.len() - 1);
            let set = &sets[usable[slot]];
            let k = rng.random_range(0..set.pairs.len());
            stream.push(set.pairs[k]);
        }
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_query_sets;

    fn sets() -> Vec<QuerySet> {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 16,
            height: 16,
            seed: 3,
            ..Default::default()
        });
        generate_query_sets(&g, 30, 11)
    }

    #[test]
    fn stream_has_requested_length_and_is_deterministic() {
        let sets = sets();
        let sched = TrafficSchedule::uniform(500, 42);
        let a = sched.generate(&sets);
        let b = sched.generate(&sets);
        assert_eq!(a.len(), 500);
        assert_eq!(a, b);
        let c = TrafficSchedule::uniform(500, 43).generate(&sets);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_draws_only_from_the_sets() {
        let sets = sets();
        let all: std::collections::HashSet<(NodeId, NodeId)> =
            sets.iter().flat_map(|s| s.pairs.iter().copied()).collect();
        for pair in TrafficSchedule::interactive(300, 0.3, 7).generate(&sets) {
            assert!(all.contains(&pair));
        }
    }

    #[test]
    fn repeat_fraction_induces_duplicates() {
        let sets = sets();
        let none = TrafficSchedule {
            repeat_fraction: 0.0,
            ..TrafficSchedule::uniform(400, 5)
        }
        .generate(&sets);
        let heavy = TrafficSchedule {
            repeat_fraction: 0.9,
            ..TrafficSchedule::uniform(400, 5)
        }
        .generate(&sets);
        let distinct = |v: &[(NodeId, NodeId)]| {
            v.iter().collect::<std::collections::HashSet<_>>().len()
        };
        assert!(
            distinct(&heavy) * 2 < distinct(&none),
            "repeats must collapse the distinct-pair count ({} vs {})",
            distinct(&heavy),
            distinct(&none)
        );
    }

    #[test]
    fn zero_weights_exclude_sets() {
        let sets = sets();
        let mut weights = [0.0; 10];
        weights[9] = 1.0; // Q10 only
        let stream = TrafficSchedule {
            total: 100,
            weights,
            repeat_fraction: 0.0,
            seed: 9,
        }
        .generate(&sets);
        let q10: std::collections::HashSet<_> = sets[9].pairs.iter().copied().collect();
        assert_eq!(stream.len(), 100);
        assert!(stream.iter().all(|p| q10.contains(p)));
    }

    #[test]
    fn empty_sets_yield_empty_stream() {
        let empty: Vec<QuerySet> = (1..=10)
            .map(|i| QuerySet {
                index: i,
                lo: 0,
                hi: 1,
                pairs: Vec::new(),
            })
            .collect();
        assert!(TrafficSchedule::uniform(50, 1).generate(&empty).is_empty());
    }
}
