//! Serving-traffic streams over the paper's query sets.
//!
//! The figure binaries iterate each `Qi` in isolation; a serving benchmark
//! instead needs one *interleaved* request stream the way real traffic
//! arrives — neighbourhood and cross-country queries mixed, with repeats
//! (commuter pairs) that a distance cache can exploit. [`TrafficSchedule`]
//! turns the distance-stratified sets of [`crate::generate_query_sets`]
//! into such a stream, deterministically in the seed.

use ah_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::QuerySet;

/// One request of a mixed-scenario traffic stream
/// ([`TrafficSchedule::generate_mixed`]): the serving layer's five
/// query kinds, each carrying exactly the parameters its endpoint
/// takes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioOp {
    /// Point distance query (`/v1/distance`).
    Distance { s: NodeId, t: NodeId },
    /// Point path query (`/v1/path`).
    Path { s: NodeId, t: NodeId },
    /// Optimal-detour query (`/v1/via`).
    Via { s: NodeId, t: NodeId, cat: u32 },
    /// k-nearest-POIs query (`/v1/knn`).
    Knn { s: NodeId, cat: u32, k: u32 },
    /// Batched distance table (`POST /v1/matrix`).
    Matrix {
        sources: Vec<NodeId>,
        targets: Vec<NodeId>,
    },
}

/// How a traffic stream draws from the ten query sets.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSchedule {
    /// Total requests to emit.
    pub total: usize,
    /// Relative draw weight per query set (indexed `Q1 = 0` … `Q10 = 9`;
    /// sets with no pairs are skipped regardless of weight).
    pub weights: [f64; 10],
    /// Fraction of requests that repeat an earlier pair instead of drawing
    /// a fresh one (`0.0 ..= 1.0`) — the cache-locality knob. Repeats pick
    /// uniformly among previously issued pairs.
    pub repeat_fraction: f64,
    /// RNG seed; equal schedules over equal sets yield equal streams.
    pub seed: u64,
}

impl TrafficSchedule {
    /// An even mix over all ten sets with no repetition.
    pub fn uniform(total: usize, seed: u64) -> Self {
        TrafficSchedule {
            total,
            weights: [1.0; 10],
            repeat_fraction: 0.0,
            seed,
        }
    }

    /// A mix resembling interactive map traffic: mostly local queries
    /// (Q1–Q4), a tail of long-range ones, and `repeat_fraction` of
    /// popular-pair repeats.
    pub fn interactive(total: usize, repeat_fraction: f64, seed: u64) -> Self {
        TrafficSchedule {
            total,
            weights: [8.0, 8.0, 6.0, 6.0, 4.0, 3.0, 2.0, 1.0, 1.0, 1.0],
            repeat_fraction: repeat_fraction.clamp(0.0, 1.0),
            seed,
        }
    }

    /// The scenario-benchmark mix: interactive weights over the query
    /// sets with an explicit `seed`, meant to be materialized with
    /// [`TrafficSchedule::generate_mixed`]. Equal arguments yield
    /// bit-equal streams — the loopback smoke and the bench bins rely
    /// on replaying the exact same traffic against different backends.
    pub fn mixed(total: usize, repeat_fraction: f64, seed: u64) -> Self {
        TrafficSchedule::interactive(total, repeat_fraction, seed)
    }

    /// Materializes a mixed-scenario stream: the pair stream of
    /// [`TrafficSchedule::generate`] with a deterministic scenario kind
    /// assigned to each pair — mostly point queries (the bread and
    /// butter), a slice of via/knn scenario traffic (`cat <
    /// categories`, `1 <= k <= max_k`), and occasional matrix batches
    /// assembled from nearby pairs of the same stream. Deterministic in
    /// the schedule seed.
    pub fn generate_mixed(
        &self,
        sets: &[QuerySet],
        categories: u32,
        max_k: u32,
    ) -> Vec<ScenarioOp> {
        let pairs = self.generate(sets);
        if pairs.is_empty() {
            return Vec::new();
        }
        let categories = categories.max(1);
        let max_k = max_k.max(1);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5CE2_A210);
        let mut ops: Vec<ScenarioOp> = Vec::with_capacity(pairs.len());
        for (i, &(s, t)) in pairs.iter().enumerate() {
            let roll = rng.random_range(0..100u32);
            ops.push(match roll {
                0..=59 => ScenarioOp::Distance { s, t },
                60..=71 => ScenarioOp::Path { s, t },
                72..=83 => ScenarioOp::Via {
                    s,
                    t,
                    cat: rng.random_range(0..categories),
                },
                84..=95 => ScenarioOp::Knn {
                    s,
                    cat: rng.random_range(0..categories),
                    k: rng.random_range(1..=max_k),
                },
                _ => {
                    // A small table over a window of the stream: up to
                    // 3 sources × 3 targets from pairs at or before i.
                    let dim = rng.random_range(1..=3usize);
                    let pick = |rng: &mut StdRng, side: fn(&(NodeId, NodeId)) -> NodeId| {
                        let mut ids: Vec<NodeId> = Vec::with_capacity(dim);
                        for _ in 0..dim {
                            let j = rng.random_range(0..=i);
                            ids.push(side(&pairs[j]));
                        }
                        ids.sort_unstable();
                        ids.dedup();
                        ids
                    };
                    ScenarioOp::Matrix {
                        sources: pick(&mut rng, |p| p.0),
                        targets: pick(&mut rng, |p| p.1),
                    }
                }
            });
        }
        ops
    }

    /// Materializes the request stream: `total` source–target pairs drawn
    /// from `sets` by weight. Returns an empty stream when every set is
    /// empty (degenerate graphs).
    pub fn generate(&self, sets: &[QuerySet]) -> Vec<(NodeId, NodeId)> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x7AFF_1C5E);
        // Cumulative integer weights (milli-units) over non-empty sets; the
        // vendored rand samples integer ranges only.
        let usable: Vec<usize> = (0..sets.len())
            .filter(|&i| {
                !sets[i].pairs.is_empty() && *self.weights.get(i).unwrap_or(&0.0) > 0.0
            })
            .collect();
        if usable.is_empty() || self.total == 0 {
            return Vec::new();
        }
        let mut cum: Vec<u64> = Vec::with_capacity(usable.len());
        let mut acc = 0u64;
        for &i in &usable {
            acc += ((self.weights[i] * 1000.0).round() as u64).max(1);
            cum.push(acc);
        }
        let mut stream: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.total);
        for _ in 0..self.total {
            if !stream.is_empty() && rng.random_bool(self.repeat_fraction) {
                let k = rng.random_range(0..stream.len());
                stream.push(stream[k]);
                continue;
            }
            let x = rng.random_range(0..acc);
            let slot = cum.partition_point(|&c| c <= x).min(usable.len() - 1);
            let set = &sets[usable[slot]];
            let k = rng.random_range(0..set.pairs.len());
            stream.push(set.pairs[k]);
        }
        stream
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate_query_sets;

    fn sets() -> Vec<QuerySet> {
        let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: 16,
            height: 16,
            seed: 3,
            ..Default::default()
        });
        generate_query_sets(&g, 30, 11)
    }

    #[test]
    fn stream_has_requested_length_and_is_deterministic() {
        let sets = sets();
        let sched = TrafficSchedule::uniform(500, 42);
        let a = sched.generate(&sets);
        let b = sched.generate(&sets);
        assert_eq!(a.len(), 500);
        assert_eq!(a, b);
        let c = TrafficSchedule::uniform(500, 43).generate(&sets);
        assert_ne!(a, c);
    }

    #[test]
    fn stream_draws_only_from_the_sets() {
        let sets = sets();
        let all: std::collections::HashSet<(NodeId, NodeId)> =
            sets.iter().flat_map(|s| s.pairs.iter().copied()).collect();
        for pair in TrafficSchedule::interactive(300, 0.3, 7).generate(&sets) {
            assert!(all.contains(&pair));
        }
    }

    #[test]
    fn repeat_fraction_induces_duplicates() {
        let sets = sets();
        let none = TrafficSchedule {
            repeat_fraction: 0.0,
            ..TrafficSchedule::uniform(400, 5)
        }
        .generate(&sets);
        let heavy = TrafficSchedule {
            repeat_fraction: 0.9,
            ..TrafficSchedule::uniform(400, 5)
        }
        .generate(&sets);
        let distinct = |v: &[(NodeId, NodeId)]| {
            v.iter().collect::<std::collections::HashSet<_>>().len()
        };
        assert!(
            distinct(&heavy) * 2 < distinct(&none),
            "repeats must collapse the distinct-pair count ({} vs {})",
            distinct(&heavy),
            distinct(&none)
        );
    }

    #[test]
    fn zero_weights_exclude_sets() {
        let sets = sets();
        let mut weights = [0.0; 10];
        weights[9] = 1.0; // Q10 only
        let stream = TrafficSchedule {
            total: 100,
            weights,
            repeat_fraction: 0.0,
            seed: 9,
        }
        .generate(&sets);
        let q10: std::collections::HashSet<_> = sets[9].pairs.iter().copied().collect();
        assert_eq!(stream.len(), 100);
        assert!(stream.iter().all(|p| q10.contains(p)));
    }

    #[test]
    fn mixed_stream_is_deterministic_and_well_formed() {
        let sets = sets();
        let sched = TrafficSchedule::mixed(600, 0.2, 77);
        let a = sched.generate_mixed(&sets, 8, 6);
        let b = sched.generate_mixed(&sets, 8, 6);
        assert_eq!(a.len(), 600);
        assert_eq!(a, b, "equal seeds must replay the exact stream");
        let c = TrafficSchedule::mixed(600, 0.2, 78).generate_mixed(&sets, 8, 6);
        assert_ne!(a, c);

        let all: std::collections::HashSet<NodeId> = sets
            .iter()
            .flat_map(|s| s.pairs.iter().flat_map(|&(a, b)| [a, b]))
            .collect();
        let mut kinds = [0usize; 5];
        for op in &a {
            match op {
                ScenarioOp::Distance { s, t } | ScenarioOp::Path { s, t } => {
                    assert!(all.contains(s) && all.contains(t));
                    kinds[matches!(op, ScenarioOp::Path { .. }) as usize] += 1;
                }
                ScenarioOp::Via { s, t, cat } => {
                    assert!(all.contains(s) && all.contains(t));
                    assert!(*cat < 8);
                    kinds[2] += 1;
                }
                ScenarioOp::Knn { s, cat, k } => {
                    assert!(all.contains(s));
                    assert!(*cat < 8);
                    assert!((1..=6).contains(k));
                    kinds[3] += 1;
                }
                ScenarioOp::Matrix { sources, targets } => {
                    assert!(!sources.is_empty() && sources.len() <= 3);
                    assert!(!targets.is_empty() && targets.len() <= 3);
                    assert!(sources.iter().chain(targets).all(|v| all.contains(v)));
                    kinds[4] += 1;
                }
            }
        }
        for (i, &count) in kinds.iter().enumerate() {
            assert!(count > 0, "scenario kind {i} absent from a 600-op stream");
        }
        // Point queries must dominate: this models serving traffic, not
        // a scenario stress test.
        assert!(kinds[0] > kinds[2] && kinds[0] > kinds[3] && kinds[0] > kinds[4]);
    }

    #[test]
    fn mixed_stream_of_empty_sets_is_empty() {
        let empty: Vec<QuerySet> = (1..=10)
            .map(|i| QuerySet {
                index: i,
                lo: 0,
                hi: 1,
                pairs: Vec::new(),
            })
            .collect();
        assert!(TrafficSchedule::mixed(50, 0.0, 1)
            .generate_mixed(&empty, 8, 4)
            .is_empty());
    }

    #[test]
    fn empty_sets_yield_empty_stream() {
        let empty: Vec<QuerySet> = (1..=10)
            .map(|i| QuerySet {
                index: i,
                lo: 0,
                hi: 1,
                pairs: Vec::new(),
            })
            .collect();
        assert!(TrafficSchedule::uniform(50, 1).generate(&empty).is_empty());
    }
}
