//! DIMACS interchange: export a synthetic network in the 9th DIMACS
//! challenge format (`.gr` + `.co`), read it back, and index the result —
//! the workflow for running this library against the paper's real datasets
//! when they are available.
//!
//! ```text
//! cargo run --release -p ah-examples --bin dimacs_roundtrip [-- <file.gr> <file.co>]
//! ```

use std::io::{BufReader, BufWriter};

use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_data::dimacs;
use ah_data::{hierarchical_grid, HierarchicalGridConfig};
use ah_graph::condense_to_largest_scc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tmp = std::env::temp_dir();
    let (gr_path, co_path) = if args.len() == 2 {
        (args[0].clone().into(), args[1].clone().into())
    } else {
        // No files supplied: write a synthetic network out first.
        let g = hierarchical_grid(&HierarchicalGridConfig {
            width: 40,
            height: 40,
            seed: 5,
            ..Default::default()
        });
        let gr = tmp.join("ah_example.gr");
        let co = tmp.join("ah_example.co");
        let gr_f = BufWriter::new(std::fs::File::create(&gr).unwrap());
        let co_f = BufWriter::new(std::fs::File::create(&co).unwrap());
        dimacs::write_graph(&g, gr_f, co_f).unwrap();
        println!("wrote {} and {}", gr.display(), co.display());
        (gr, co)
    };

    // Read, restrict to the largest strongly connected component (the
    // standard preprocessing step for the challenge data), and index.
    let gr_f = BufReader::new(std::fs::File::open(&gr_path).unwrap());
    let co_f = BufReader::new(std::fs::File::open(&co_path).unwrap());
    let raw = dimacs::read_graph(gr_f, co_f).expect("valid DIMACS pair");
    let (g, _mapping) = condense_to_largest_scc(&raw);
    println!(
        "loaded {}: {} nodes / {} edges (largest SCC)",
        gr_path.display(),
        g.num_nodes(),
        g.num_edges()
    );

    let index = AhIndex::build(&g, &BuildConfig::default());
    let mut q = AhQuery::new();
    let s = 0u32;
    let t = (g.num_nodes() / 2) as u32;
    match q.path(&index, s, t) {
        Some(p) => {
            p.verify(&g).unwrap();
            println!(
                "shortest path {s} → {t}: {} edges, length {}",
                p.num_edges(),
                p.dist.length
            );
        }
        None => println!("{t} not reachable from {s}"),
    }
}
