//! End-to-end **open service** in one file: build a small road network,
//! index it, put the HTTP edge in front of the serving engine, and
//! query it over a real loopback socket — printing what a client
//! actually observes (statuses, bodies, wire latencies), including what
//! overload looks like when a burst exceeds the admission window.
//!
//! ```sh
//! cargo run --release -p ah_examples --example edge_serving
//! ```

use std::time::{Duration, Instant};

use ah_core::{AhIndex, BuildConfig};
use ah_net::blocking;
use ah_net::{EdgeConfig, EdgeServer};
use ah_server::{AhBackend, Server, ServerConfig};

fn main() {
    // 1. A network and its index (a 12×12 lattice keeps this instant).
    let g = ah_data::fixtures::lattice(12, 12, 15);
    println!(
        "network: {} nodes, {} edges; building AH index …",
        g.num_nodes(),
        g.num_edges()
    );
    let idx = AhIndex::build(&g, &BuildConfig::default());
    let backend = AhBackend::new(&idx);

    // 2. The serving engine (cache + metrics + workers) and the edge.
    //    A deliberately small queue makes the overload demo visible.
    let server = Server::new(ServerConfig::with_workers(2));
    let edge = EdgeServer::bind(
        "127.0.0.1:0",
        EdgeConfig {
            workers: 2,
            queue_capacity: 8,
            ..Default::default()
        },
    )
    .expect("bind loopback");
    let addr = edge.local_addr().unwrap();
    let handle = edge.handle();
    println!("edge listening on http://{addr} (queue capacity 8)\n");

    std::thread::scope(|scope| {
        let serving = scope.spawn(|| edge.serve(&server, &backend));

        // 3. A keep-alive client (`ah_net::blocking`): sequential
        //    queries with wire latency.
        let mut c = blocking::Client::connect(addr).expect("connect");
        c.stream()
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        for (s, t) in [(0u32, 143u32), (5, 77), (143, 0), (0, 143)] {
            let t0 = Instant::now();
            let resp = c.get(&format!("/v1/distance?src={s}&dst={t}")).unwrap();
            println!(
                "GET /v1/distance?src={s}&dst={t}  → {} {}  ({:.0} µs over the wire)",
                resp.status,
                resp.text(),
                t0.elapsed().as_secs_f64() * 1e6
            );
        }
        // A path query and the health endpoint on the same connection.
        let resp = c.get("/v1/path?src=0&dst=143").unwrap();
        println!("GET /v1/path?src=0&dst=143     → {} {}", resp.status, resp.text());
        let resp = c.get("/healthz").unwrap();
        println!("GET /healthz                   → {} {}\n", resp.status, resp.text());

        // 4. Overload: pipeline a burst far beyond the queue capacity.
        //    The edge answers the excess with 429 + Retry-After instead
        //    of buffering without bound.
        let mut burst = String::new();
        for i in 0..64u32 {
            burst.push_str(&format!(
                "GET /v1/distance?src={}&dst={} HTTP/1.1\r\nHost: e\r\n\r\n",
                i % 144,
                (i * 7 + 3) % 144
            ));
        }
        c.send(burst.as_bytes()).unwrap();
        let (mut ok, mut shed) = (0, 0);
        for _ in 0..64 {
            match c.recv().unwrap().status {
                200 => ok += 1,
                429 => shed += 1,
                other => println!("unexpected status {other}"),
            }
        }
        println!("burst of 64 pipelined requests → {ok} × 200, {shed} × 429 (admission control)");

        // 5. Scrape the operator metrics, then drain gracefully.
        let metrics = c.get("/metrics").unwrap().text();
        for line in metrics
            .lines()
            .filter(|l| l.starts_with("ah_queue") || l.starts_with("ah_server_query_latency"))
        {
            println!("  {line}");
        }

        handle.shutdown();
        let report = serving.join().unwrap().expect("serve");
        println!(
            "\ndrained: {} connections served, {} rejected at admission, queue high-water {}",
            report.connections, report.rejected, report.queue_high_water
        );
    });
}
