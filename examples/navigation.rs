//! Cross-network navigation: long-range routes, where AH's hierarchy pays
//! off most (the paper's Q8–Q10 regime). Compares AH, CH and Dijkstra on
//! the same routes.
//!
//! ```text
//! cargo run --release -p ah-examples --bin navigation
//! ```

use std::time::Instant;

use ah_ch::{ChIndex, ChQuery};
use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_data::{hierarchical_grid, HierarchicalGridConfig};

fn main() {
    let network = hierarchical_grid(&HierarchicalGridConfig {
        width: 72,
        height: 72,
        seed: 4242,
        ..Default::default()
    });
    println!(
        "network: {} nodes, {} edges",
        network.num_nodes(),
        network.num_edges()
    );

    let (ah, ah_secs) = timed(|| AhIndex::build(&network, &BuildConfig::default()));
    let (ch, ch_secs) = timed(|| ChIndex::build(&network));
    println!("AH preprocessing: {ah_secs:.2}s; CH preprocessing: {ch_secs:.2}s");

    // Long-range routes: the paper's Q9/Q10 regime (cross-country trips).
    let sets = ah_workload::generate_query_sets(&network, 200, 11);
    let long = sets
        .iter()
        .rev()
        .find(|s| !s.pairs.is_empty())
        .expect("long-range pairs exist");
    println!(
        "benchmarking {} long-range routes (Q{})",
        long.pairs.len(),
        long.index
    );

    let mut ahq = AhQuery::new();
    let mut chq = ChQuery::new();

    let t = Instant::now();
    let mut ah_total = 0u64;
    for &(s, d) in &long.pairs {
        ah_total += ahq.distance(&ah, s, d).unwrap();
    }
    let ah_us = t.elapsed().as_secs_f64() * 1e6 / long.pairs.len() as f64;

    let t = Instant::now();
    let mut ch_total = 0u64;
    for &(s, d) in &long.pairs {
        ch_total += chq.distance(&ch, s, d).unwrap();
    }
    let ch_us = t.elapsed().as_secs_f64() * 1e6 / long.pairs.len() as f64;

    let t = Instant::now();
    let mut dij_total = 0u64;
    for &(s, d) in &long.pairs {
        dij_total += ah_search::dijkstra_distance(&network, s, d).unwrap().length;
    }
    let dij_us = t.elapsed().as_secs_f64() * 1e6 / long.pairs.len() as f64;

    assert_eq!(ah_total, ch_total);
    assert_eq!(ah_total, dij_total);
    println!("AH:       {ah_us:9.1} us/route");
    println!("CH:       {ch_us:9.1} us/route");
    println!("Dijkstra: {dij_us:9.1} us/route");
    println!("all methods agree on all route lengths ✓");

    // One full itinerary, unpacked to road segments.
    let (s, d) = long.pairs[0];
    let route = ahq.path(&ah, s, d).unwrap();
    route.verify(&network).unwrap();
    println!(
        "example itinerary {s} → {d}: {} segments, travel time {}",
        route.num_edges(),
        route.dist.length
    );
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t = Instant::now();
    let out = f();
    (out, t.elapsed().as_secs_f64())
}
