//! The paper's introductory scenario: a user asks for nearby restaurants;
//! the service ranks candidates by *network* distance (distance queries),
//! then produces driving directions to the chosen one (a shortest-path
//! query).
//!
//! ```text
//! cargo run --release -p ah-examples --bin poi_search
//! ```

use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_data::{hierarchical_grid, HierarchicalGridConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let network = hierarchical_grid(&HierarchicalGridConfig {
        width: 48,
        height: 48,
        seed: 99,
        ..Default::default()
    });
    let index = AhIndex::build(&network, &BuildConfig::default());
    let mut q = AhQuery::new();
    let mut rng = StdRng::seed_from_u64(7);

    // The user's location and twenty candidate restaurants scattered over
    // the network (each anchored to a road-network node, as a real
    // geocoder would do).
    let user = rng.random_range(0..network.num_nodes() as u32);
    let restaurants: Vec<u32> = (0..20)
        .map(|_| rng.random_range(0..network.num_nodes() as u32))
        .collect();

    // Rank by network distance — straight-line distance would mislead on
    // a road network with rivers/highways; this is the paper's motivating
    // use of distance queries.
    let mut ranked: Vec<(u32, u64)> = restaurants
        .iter()
        .filter_map(|&r| q.distance(&index, user, r).map(|d| (r, d)))
        .collect();
    ranked.sort_by_key(|&(_, d)| d);

    println!("user at node {user}; nearest restaurants by driving time:");
    for (i, (r, d)) in ranked.iter().take(5).enumerate() {
        let p = network.coord(*r);
        println!("  #{0}: node {r} at ({1}, {2}), network distance {d}", i + 1, p.x, p.y);
    }

    // The user picks the winner; produce turn-by-turn directions.
    let (best, d) = ranked[0];
    let route = q.path(&index, user, best).expect("reachable");
    route.verify(&network).unwrap();
    assert_eq!(route.dist.length, d);
    println!(
        "route to node {best}: {} road segments, total travel time {}",
        route.num_edges(),
        route.dist.length
    );

    // Show the "directions": coordinates of the first few waypoints.
    print!("waypoints:");
    for v in route.nodes.iter().take(6) {
        let p = network.coord(*v);
        print!(" ({}, {})", p.x, p.y);
    }
    println!(" …");
}
