//! Quickstart: build an Arterial Hierarchy over a synthetic road network
//! and answer distance + shortest-path queries.
//!
//! ```text
//! cargo run --release -p ah-examples --bin quickstart
//! ```

use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_data::{hierarchical_grid, HierarchicalGridConfig};

fn main() {
    // 1. A ~4K-node road network: jittered lattice with four road tiers
    //    (local streets up to highways), some one-way streets, strongly
    //    connected.
    let network = hierarchical_grid(&HierarchicalGridConfig {
        width: 64,
        height: 64,
        seed: 2013,
        ..Default::default()
    });
    println!(
        "network: {} nodes, {} directed edges",
        network.num_nodes(),
        network.num_edges()
    );

    // 2. Build the index. Default configuration = the paper's AH: grid
    //    levels from the arterial construction, vertex-cover ranking,
    //    contraction shortcuts with O(1)-expandable middles, elevating
    //    edges.
    let t = std::time::Instant::now();
    let index = AhIndex::build(&network, &BuildConfig::default());
    let stats = index.stats();
    println!(
        "AH built in {:.2?}: h = {}, {} shortcuts, {} elevating arcs, {:.1} MB",
        t.elapsed(),
        stats.h,
        stats.shortcuts,
        stats.elevating_arcs,
        stats.size_bytes as f64 / (1024.0 * 1024.0)
    );
    println!("nodes per level: {:?}", stats.level_histogram);

    // 3. Queries. `AhQuery` holds the reusable search state; keep one per
    //    thread.
    let mut q = AhQuery::new();
    let (s, t) = (0u32, (network.num_nodes() - 1) as u32);

    let d = q.distance(&index, s, t).expect("network is connected");
    println!("distance({s}, {t}) = {d}");

    let path = q.path(&index, s, t).expect("network is connected");
    path.verify(&network).expect("returned path is a real path");
    println!(
        "path({s}, {t}): {} edges, length {}, first few nodes {:?}…",
        path.num_edges(),
        path.dist.length,
        &path.nodes[..path.nodes.len().min(8)]
    );

    // 4. Sanity: AH is exact — spot-check against textbook Dijkstra.
    let expect = ah_search::dijkstra_distance(&network, s, t).unwrap();
    assert_eq!(d, expect.length);
    println!("matches Dijkstra ✓");
}
