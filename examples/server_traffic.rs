//! Serving a burst of concurrent traffic from one shared AH index.
//!
//! Builds a synthetic road network, generates an interactive traffic mix
//! over the paper's distance-stratified query sets, and serves it through
//! the `ah_server` worker pool — first with the AH backend, then with CH
//! and plain bidirectional Dijkstra behind the same trait — printing
//! throughput, latency quantiles, and cache effectiveness for each.
//!
//! ```sh
//! cargo run --release --example server_traffic
//! ```

use ah_ch::ChIndex;
use ah_core::{AhIndex, BuildConfig};
use ah_server::{
    AhBackend, ChBackend, DijkstraBackend, DistanceBackend, Request, Server, ServerConfig,
};
use ah_workload::{generate_query_sets, TrafficSchedule};

fn main() {
    // A mid-size synthetic road network (~2.3K nodes).
    let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 48,
        height: 48,
        seed: 2013,
        ..Default::default()
    });
    println!("network: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    println!("building AH and CH indices …");
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let ch = ChIndex::build(&g);

    // 5,000 requests: mostly local queries, 30% repeated pairs —
    // the shape of interactive map traffic.
    let sets = generate_query_sets(&g, 120, 42);
    let stream = TrafficSchedule::interactive(5_000, 0.3, 42).generate(&sets);
    let requests: Vec<Request> = stream
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| Request::distance(i as u64, s, t))
        .collect();
    let workers = std::thread::available_parallelism().map_or(2, |p| p.get());
    println!(
        "serving {} requests on {workers} workers\n",
        requests.len()
    );

    println!("backend   qps        p50_us  p99_us  cache_hit_rate");
    for backend in [
        &AhBackend::new(&ah) as &dyn DistanceBackend,
        &ChBackend::new(&ch),
        &DijkstraBackend::new(&g),
    ] {
        let server = Server::new(ServerConfig::with_workers(workers));
        let report = server.run(backend, &requests);
        let s = &report.snapshot;
        println!(
            "{:<9} {:<10.0} {:<7.1} {:<7.1} {:.2}",
            backend.name(),
            s.qps,
            s.p50_us,
            s.p99_us,
            s.cache_hit_rate
        );
    }
    println!("\nsame distances from every backend — swap freely per request.");
}
