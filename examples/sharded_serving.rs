//! Region-sharded serving: one worker pool per spatial shard.
//!
//! Builds a synthetic road network, partitions it into four grid-keyed
//! regions (`ah_shard`), and serves an interactive traffic mix through
//! `ShardedServer` — each region with its own queue, cache, and
//! workers, cross-shard queries composed exactly through boundary
//! nodes. The same stream is then served unsharded to show the answers
//! are bit-equal. Mirrors `server_traffic.rs`; see `docs/SHARDING.md`
//! for the operator's guide.
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```

use std::sync::Arc;

use ah_core::{AhIndex, BuildConfig};
use ah_server::{
    AhBackend, Request, Server, ServerConfig, ShardedServer, ShardedServerConfig,
};
use ah_shard::{ShardConfig, ShardedIndex};
use ah_workload::{generate_query_sets, TrafficSchedule};

fn main() {
    // A mid-size synthetic road network (~2.3K nodes).
    let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 48,
        height: 48,
        seed: 2013,
        ..Default::default()
    });
    println!("network: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    println!("building the global AH index and sharding into 4 regions …");
    let global = Arc::new(AhIndex::build(&g, &BuildConfig::default()));
    let sharded = Arc::new(ShardedIndex::from_global(
        &g,
        global.clone(),
        &ShardConfig {
            shards: 4,
            ..Default::default()
        },
    ));
    let stats = sharded.stats();
    println!(
        "{} shards at grid level {}, largest {} nodes, {} border nodes, certified: {}",
        stats.shards, stats.level, stats.largest, stats.borders, stats.certified
    );

    // 5,000 requests: mostly local queries, 30% repeated pairs.
    let sets = generate_query_sets(&g, 120, 42);
    let stream = TrafficSchedule::interactive(5_000, 0.3, 42).generate(&sets);
    let requests: Vec<Request> = stream
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| Request::distance(i as u64, s, t))
        .collect();

    let server = ShardedServer::new(sharded, ShardedServerConfig::with_workers_per_shard(2));
    let report = server.run(&requests);
    println!(
        "\nsharded: {:.0} qps total, {:.1}% of requests crossed shards",
        report.qps(),
        100.0 * report.cross_shard_fraction()
    );
    println!("shard  requests  qps        p50_us  p99_us  hit_rate");
    for lane in &report.lanes {
        let s = &lane.snapshot;
        println!(
            "{:<6} {:<9} {:<10.0} {:<7.1} {:<7.1} {:.2}",
            lane.shard, lane.requests, s.qps, s.p50_us, s.p99_us, s.cache_hit_rate
        );
    }

    // Same stream, one unsharded pool: the answers must be identical.
    let unsharded = Server::new(ServerConfig::with_workers(8));
    let want = unsharded.run(&AhBackend::new(&global), &requests);
    let agree = report
        .responses
        .iter()
        .zip(&want.responses)
        .all(|(a, b)| (a.id, a.distance) == (b.id, b.distance));
    assert!(agree);
    println!(
        "\nunsharded: {:.0} qps — and every one of the {} answers is bit-equal.",
        want.snapshot.qps,
        requests.len()
    );
}
