//! Index snapshot persistence end to end: build once, save, restart the
//! server from disk, then hot-swap to a reindexed network with zero
//! downtime.
//!
//! ```sh
//! cargo run --release --example snapshot_persistence
//! ```

use std::sync::Arc;
use std::time::Instant;

use ah_core::{AhIndex, BuildConfig};
use ah_server::{Request, Server, ServerConfig, SnapshotServer};
use ah_store::{Snapshot, SnapshotContents};

fn main() {
    let dir = std::env::temp_dir();
    let path = dir.join("ah_example_index.snap");

    // 1. Build an index from source data and persist it.
    let g = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 24,
        height: 24,
        seed: 7,
        ..Default::default()
    });
    let t = Instant::now();
    let idx = AhIndex::build(&g, &BuildConfig::default());
    let build_secs = t.elapsed().as_secs_f64();

    let t = Instant::now();
    let bytes = Snapshot::write(&path, SnapshotContents::new().graph(&g).ah(&idx))
        .expect("write snapshot");
    println!(
        "built AH over {} nodes in {build_secs:.2}s; snapshot: {:.1} KiB in {:.3}s → {}",
        g.num_nodes(),
        bytes as f64 / 1024.0,
        t.elapsed().as_secs_f64(),
        path.display()
    );

    // 2. "Restart": bring a server up from the snapshot alone.
    let t = Instant::now();
    let server: SnapshotServer =
        Server::from_snapshot(&path, ServerConfig::with_workers(2)).expect("load snapshot");
    println!(
        "server restarted from snapshot in {:.3}s (no rebuild)",
        t.elapsed().as_secs_f64()
    );

    let n = g.num_nodes() as u32;
    let requests: Vec<Request> = (0..500u64)
        .map(|i| Request::distance(i, (i as u32 * 17 + 3) % n, (i as u32 * 101 + 9) % n))
        .collect();
    let report = server.run(&requests);
    println!(
        "served {} requests at {:.0} q/s (p99 {:.1} µs)",
        report.responses.len(),
        report.snapshot.qps,
        report.snapshot.p99_us
    );

    // 3. Reindex under live traffic: new road data (here: a re-seeded
    //    network of the same shape), built off the serving path, swapped
    //    atomically. In-flight runs finish on the old generation.
    let g2 = ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 24,
        height: 24,
        seed: 8,
        ..Default::default()
    });
    let idx2 = Arc::new(AhIndex::build(&g2, &BuildConfig::default()));
    let old = server.swap_index(idx2);
    println!(
        "swapped to the reindexed network (old generation had {} nodes; cache cleared)",
        old.num_nodes()
    );
    let report = server.run(&requests);
    println!(
        "post-swap: served {} requests at {:.0} q/s from the new index",
        report.responses.len(),
        report.snapshot.qps
    );

    std::fs::remove_file(&path).ok();
}
