//! Host crate for the runnable examples in this directory.
//!
//! The library target is intentionally empty; the value of this crate
//! is its `[[example]]` targets (`cargo run --example quickstart`,
//! `navigation`, `poi_search`, `dimacs_roundtrip`), which exercise the
//! AH index, the CH baseline, and the DIMACS loader end-to-end.
