//! Placeholder library target; the real content lives in `tests/tests/*.rs`
//! (cross-crate integration and property tests).
