//! Shared support code for the cross-crate integration and property
//! suites in `tests/tests/*.rs` — most importantly the brute-force
//! [`oracle`] every identity suite checks the engines against.

#[path = "../support/oracle.rs"]
pub mod oracle;
