//! The shared brute-force oracle: first-principles reference answers
//! every identity suite checks the engines against.
//!
//! This module deliberately reimplements textbook Dijkstra over
//! [`ah_graph::Graph`]'s raw adjacency instead of reusing `ah_search` —
//! the point of an oracle is independence from the code under test. It
//! tracks path *length only*: the workspace's nuance component breaks
//! ties between equal-length paths but never changes which length is
//! minimal, so a length-only search is exact for every distance answer
//! the serving layer exposes.
//!
//! Scenario references follow the workspace-wide determinism contract
//! (`ah_search::scenario` module docs): k-NN sorted ascending by
//! `(distance, node id)`, via minimizing `(total, poi id)`, unreachable
//! candidates dropped.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ah_graph::{Graph, NodeId};

/// The reference via answer; field-compatible with
/// `ah_search::ViaAnswer` but independently derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViaRef {
    /// Chosen POI, minimizing `(total, poi)`.
    pub poi: NodeId,
    /// `d(s, poi) + d(poi, t)`.
    pub total: u64,
    /// First leg `d(s, poi)`.
    pub to_poi: u64,
    /// Second leg `d(poi, t)`.
    pub from_poi: u64,
}

/// Forward single-source distances: `result[v] = d(source, v)`, `None`
/// when unreachable. Plain binary-heap Dijkstra, no pruning, no reuse.
pub fn dists_from(g: &Graph, source: NodeId) -> Vec<Option<u64>> {
    multi_source(g, &[(source, 0)], false)
}

/// Backward single-source distances: `result[v] = d(v, target)`.
pub fn dists_to(g: &Graph, target: NodeId) -> Vec<Option<u64>> {
    multi_source(g, &[(target, 0)], true)
}

/// Multi-source Dijkstra with per-source offsets. `backward` follows
/// in-edges (distances *to* the sources) instead of out-edges.
pub fn multi_source(
    g: &Graph,
    sources: &[(NodeId, u64)],
    backward: bool,
) -> Vec<Option<u64>> {
    let n = g.num_nodes();
    let mut dist: Vec<u64> = vec![u64::MAX; n];
    let mut heap: BinaryHeap<Reverse<(u64, NodeId)>> = BinaryHeap::new();
    for &(s, d0) in sources {
        if d0 < dist[s as usize] {
            dist[s as usize] = d0;
            heap.push(Reverse((d0, s)));
        }
    }
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        let arcs = if backward { g.in_edges(u) } else { g.out_edges(u) };
        for a in arcs {
            let nd = d.saturating_add(u64::from(a.weight));
            if nd < dist[a.head as usize] {
                dist[a.head as usize] = nd;
                heap.push(Reverse((nd, a.head)));
            }
        }
    }
    dist.into_iter()
        .map(|d| (d != u64::MAX).then_some(d))
        .collect()
}

/// Point-to-point reference distance.
pub fn distance(g: &Graph, s: NodeId, t: NodeId) -> Option<u64> {
    dists_from(g, s)[t as usize]
}

/// Reference one-to-many row.
pub fn one_to_many(g: &Graph, source: NodeId, targets: &[NodeId]) -> Vec<Option<u64>> {
    let d = dists_from(g, source);
    targets.iter().map(|&t| d[t as usize]).collect()
}

/// Reference distance table: row `i` is [`one_to_many`] from
/// `sources[i]`.
pub fn matrix(g: &Graph, sources: &[NodeId], targets: &[NodeId]) -> Vec<Vec<Option<u64>>> {
    sources.iter().map(|&s| one_to_many(g, s, targets)).collect()
}

/// Reference k-NN: the `k` nearest `candidates` from `source`, sorted
/// ascending by `(distance, node id)`, unreachable dropped.
pub fn knn(g: &Graph, source: NodeId, candidates: &[NodeId], k: usize) -> Vec<(NodeId, u64)> {
    let d = dists_from(g, source);
    let mut found: Vec<(u64, NodeId)> = candidates
        .iter()
        .filter_map(|&p| d[p as usize].map(|d| (d, p)))
        .collect();
    found.sort_unstable();
    found.truncate(k);
    found.into_iter().map(|(d, p)| (p, d)).collect()
}

/// Reference via: exhaustive scan over every candidate, minimizing
/// `(d(s,p) + d(p,t), p)`; `None` when no candidate has both legs.
pub fn via(g: &Graph, s: NodeId, t: NodeId, candidates: &[NodeId]) -> Option<ViaRef> {
    let fwd = dists_from(g, s);
    let bwd = dists_to(g, t);
    candidates
        .iter()
        .filter_map(|&p| {
            let a = fwd[p as usize]?;
            let b = bwd[p as usize]?;
            Some((a.saturating_add(b), p, a, b))
        })
        .min()
        .map(|(total, poi, to_poi, from_poi)| ViaRef {
            poi,
            total,
            to_poi,
            from_poi,
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 —1→ 1 —1→ 2, slow direct 0 —5→ 2, and an isolated node 3.
    fn tiny() -> Graph {
        let mut b = ah_graph::GraphBuilder::new();
        for i in 0..4 {
            b.add_node(ah_graph::Point::new(i, 0));
        }
        b.add_edge(0, 1, 1);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 2, 5);
        b.build()
    }

    #[test]
    fn forward_backward_and_unreachable() {
        let g = tiny();
        assert_eq!(dists_from(&g, 0), vec![Some(0), Some(1), Some(2), None]);
        assert_eq!(dists_to(&g, 2), vec![Some(2), Some(1), Some(0), None]);
        assert_eq!(distance(&g, 2, 0), None, "edges are directed");
    }

    #[test]
    fn multi_source_offsets() {
        let g = tiny();
        let d = multi_source(&g, &[(0, 10), (1, 0)], false);
        assert_eq!(d, vec![Some(10), Some(0), Some(1), None]);
    }

    #[test]
    fn scenario_references() {
        let g = tiny();
        assert_eq!(matrix(&g, &[0, 1], &[2, 3]), vec![
            vec![Some(2), None],
            vec![Some(1), None],
        ]);
        assert_eq!(knn(&g, 0, &[3, 2, 1], 2), vec![(1, 1), (2, 2)]);
        assert_eq!(
            via(&g, 0, 2, &[1, 3]),
            Some(ViaRef {
                poi: 1,
                total: 2,
                to_poi: 1,
                from_poi: 1
            })
        );
        assert_eq!(via(&g, 2, 0, &[1]), None);
    }
}
