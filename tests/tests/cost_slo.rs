//! Cost accounting and the SLO engine, measured at the seams that
//! matter: the drained `CostCounters` must describe what the algorithm
//! actually did (the paper's search-space axis, not the wall clock),
//! the per-kind `ah_query_*` families must render for every backend,
//! and a sampled span must carry its cost words end to end over a real
//! socket while `/readyz` degrades under a violated objective.
//!
//! The load-bearing identity: a full single-source Dijkstra sweep
//! (`one_to_many`, `matrix` rows) settles **exactly** the nodes the
//! brute-force oracle says are reachable — no more (no duplicate
//! settles), no fewer (no early exit). Point queries are bidirectional
//! and keep only the invariant bounds; the labels backend answers with
//! merges alone (`nodes_settled == 0`).

use std::net::SocketAddr;

use ah_core::{AhIndex, BuildConfig};
use ah_net::{EdgeConfig, EdgeServer};
use ah_server::{
    AhBackend, ChBackend, DijkstraBackend, DistanceBackend, LabelBackend, Request, Server,
    ServerConfig, SloPolicy, TraceConfig, COST_FIELD_NAMES,
};
use ah_workload::{generate_query_sets, TrafficSchedule};

fn network() -> ah_graph::Graph {
    ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 14,
        height: 14,
        one_way: 0.1,
        seed: 77,
        ..Default::default()
    })
}

/// A Q1–Q10 interactive mix over the network, deterministic in `seed`.
fn traffic(g: &ah_graph::Graph, total: usize, seed: u64) -> Vec<(u32, u32)> {
    let sets = generate_query_sets(g, 30, seed);
    let stream = TrafficSchedule::interactive(total, 0.2, seed).generate(&sets);
    assert!(!stream.is_empty(), "degenerate workload");
    stream
}

/// Brute-force reachable-node count from `source` (the settle-count
/// oracle: Dijkstra settles a node iff it is reachable).
fn reachable_from(g: &ah_graph::Graph, source: u32) -> u64 {
    (0..g.num_nodes() as u32)
        .filter(|&t| ah_search::dijkstra_distance(g, source, t).is_some())
        .count() as u64
}

#[test]
fn dijkstra_sweeps_settle_exactly_the_reachable_nodes() {
    let g = network();
    let n = g.num_nodes() as u32;
    let backend = DijkstraBackend::new(&g);
    let mut session = backend.make_session();
    let targets: Vec<u32> = (0..n).collect();

    for source in [0u32, 33, 140] {
        let _ = session.one_to_many(source, &targets);
        let cost = session.take_cost();
        assert_eq!(
            cost.nodes_settled,
            reachable_from(&g, source),
            "source {source}: a full sweep settles each reachable node exactly once"
        );
        assert!(
            cost.heap_pops >= cost.nodes_settled,
            "stale heap entries can only add pops, never remove settles"
        );
        assert!(cost.edges_relaxed > 0, "a sweep must examine arcs");
    }

    // A matrix is one full sweep per source row; the tally is additive
    // across the whole request.
    let sources = [0u32, 33];
    let _ = session.matrix(&sources, &targets);
    let cost = session.take_cost();
    let want: u64 = sources.iter().map(|&s| reachable_from(&g, s)).sum();
    assert_eq!(cost.nodes_settled, want, "matrix rows are independent sweeps");
}

#[test]
fn cost_families_track_each_backends_algorithm_on_the_q_mix() {
    let g = network();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let ch = ah_ch::ChIndex::build(&g);
    let labels = ah_labels::LabelIndex::build(&g, ch.order());
    let stream = traffic(&g, 300, 0xC057);
    let requests: Vec<Request> = stream
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| Request::distance(i as u64, s, t))
        .collect();

    let ah_backend = AhBackend::new(&ah);
    let ch_backend = ChBackend::new(&ch);
    let dij_backend = DijkstraBackend::new(&g);
    let label_backend = LabelBackend::new(&labels, &ah);
    let backends: [(&str, &dyn DistanceBackend); 4] = [
        ("AH", &ah_backend),
        ("CH", &ch_backend),
        ("Dijkstra", &dij_backend),
        ("labels", &label_backend),
    ];

    for (name, backend) in backends {
        let server = Server::new(ServerConfig::with_workers(2));
        let _ = server.run(backend, &requests);
        let total = server.metrics().cost.total();
        if name == "labels" {
            // The labels analogue of a settled node is a merged label
            // entry: the two-pointer intersection touches no graph.
            assert_eq!(total.nodes_settled, 0, "label merges settle no nodes");
            assert!(total.label_entries_merged > 0, "merges must be counted");
        } else {
            assert!(total.nodes_settled > 0, "{name}: searches settle nodes");
            assert!(
                total.heap_pops >= total.nodes_settled,
                "{name}: every settle is a pop"
            );
            assert!(total.edges_relaxed > 0, "{name}: searches relax arcs");
            assert_eq!(
                total.label_entries_merged, 0,
                "{name}: only the labels backend merges labels"
            );
        }
        // The serving layer adds the cache outcome on top of whatever
        // the kernel did; a repeat-heavy mix must score hits.
        assert_eq!(total.cache_probes, requests.len() as u64, "{name}");
        assert!(total.cache_hits > 0, "{name}: repeat pairs must hit");
        assert!(total.cache_hits <= total.cache_probes, "{name}");

        // Every cost field renders as its own counter family with the
        // request kind as a label.
        let text = server.registry().render();
        for field in COST_FIELD_NAMES {
            assert!(
                text.contains(&format!("# TYPE ah_query_{field} counter")),
                "{name}: family ah_query_{field} missing from /metrics"
            );
        }
        assert!(
            text.contains("ah_query_settled_nodes{kind=\"distance\"}"),
            "{name}: distance-kind cost row missing:\n{text}"
        );
    }
}

/// Fetches `path` over an already-connected loopback client.
fn get(c: &mut ah_net::blocking::Client, path: &str) -> ah_net::blocking::Response {
    c.get(path).expect("loopback GET")
}

/// True if any occurrence of `"field":N` in `json` has `N > 0`.
fn has_positive_field(json: &str, field: &str) -> bool {
    let needle = format!("\"{field}\":");
    json.match_indices(&needle).any(|(i, _)| {
        json[i + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect::<String>()
            .parse::<u64>()
            .is_ok_and(|v| v > 0)
    })
}

#[test]
fn sampled_spans_carry_cost_over_the_socket_and_readyz_degrades() {
    let g = network();
    let idx = AhIndex::build(&g, &BuildConfig::default());
    let backend = AhBackend::new(&idx);
    let stream = traffic(&g, 60, 0x510);

    // Sample every request; give the edge an impossible 1 ns p99
    // objective so serving any real traffic must trip readiness.
    let server = Server::new(ServerConfig {
        workers: 2,
        trace: TraceConfig {
            sample_every: 1,
            ..Default::default()
        },
        ..Default::default()
    });
    let edge = EdgeServer::bind(
        "127.0.0.1:0",
        EdgeConfig {
            workers: 2,
            slo: SloPolicy {
                p99_target_ns: 1,
                min_requests: 5,
                ..Default::default()
            },
            ..Default::default()
        },
    )
    .unwrap();
    let addr: SocketAddr = edge.local_addr().unwrap();
    let handle = edge.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| edge.serve(&server, &backend));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut c = ah_net::blocking::Client::connect(addr).unwrap();

            // Below min_requests nothing can trip: readiness starts 200.
            let r = get(&mut c, "/readyz");
            assert_eq!(r.status, 200, "{}", r.text());
            assert!(r.text().contains("\"ready\":true"), "{}", r.text());

            for &(s, t) in &stream {
                let resp = get(&mut c, &format!("/v1/distance?src={s}&dst={t}"));
                assert_eq!(resp.status, 200, "{}", resp.text());
            }

            // Every request was sampled: the trace ring's spans must
            // carry non-zero cost words — kernel-side (settled nodes)
            // and edge-side (response bytes) — end to end.
            let traces = get(&mut c, "/debug/traces");
            assert_eq!(traces.status, 200);
            let body = traces.text();
            assert!(body.contains("\"cost\":{"), "spans carry no cost: {body}");
            assert!(
                has_positive_field(&body, "settled_nodes"),
                "no span recorded settled nodes: {body}"
            );
            assert!(
                has_positive_field(&body, "bytes_out"),
                "no span recorded response bytes: {body}"
            );

            // The window ring saw the traffic and the policy reports it.
            let slo = get(&mut c, "/debug/slo");
            assert_eq!(slo.status, 200);
            let slo_body = slo.text();
            assert!(slo_body.contains("\"policy\""), "{slo_body}");
            assert!(has_positive_field(&slo_body, "requests"), "{slo_body}");

            // With >= min_requests served against a 1 ns p99 target,
            // readiness must degrade to 503 with a JSON reason.
            let r = get(&mut c, "/readyz");
            assert_eq!(r.status, 503, "{}", r.text());
            assert!(r.text().contains("\"ready\":false"), "{}", r.text());
            assert!(r.text().contains("p99"), "{}", r.text());
        }));
        handle.shutdown();
        serving.join().unwrap().unwrap();
        if let Err(p) = outcome {
            std::panic::resume_unwind(p);
        }
    });
}
