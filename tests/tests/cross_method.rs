//! Cross-method equivalence: every index in the workspace must return
//! exactly the same distances as textbook Dijkstra, and every returned
//! path must be a real path of the reported length.

use ah_ch::{ChIndex, ChQuery};
use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_data::{fixtures, hierarchical_grid, random_geometric, HierarchicalGridConfig};
use ah_fc::{FcIndex, FcQuery};
use ah_graph::Graph;
use ah_search::{dijkstra_distance, dijkstra_path, BidirectionalDijkstra};
use ah_silc::{SilcIndex, SilcQuery};

/// Runs every method on every (s, t) pair sampled with `stride` and
/// cross-checks against Dijkstra.
fn check_all_methods(g: &Graph, stride: usize) {
    let ah = AhIndex::build(g, &BuildConfig::default());
    let fc = FcIndex::build(g);
    let ch = ChIndex::build(g);
    let silc = SilcIndex::build(g);
    let mut ahq = AhQuery::new();
    let mut fcq = FcQuery::new();
    let mut chq = ChQuery::new();
    let mut silcq = SilcQuery::new();
    let mut bd = BidirectionalDijkstra::new();

    let n = g.num_nodes() as u32;
    for s in (0..n).step_by(stride) {
        for t in (0..n).step_by(stride) {
            let want = dijkstra_distance(g, s, t).map(|d| d.length);
            assert_eq!(ahq.distance(&ah, s, t), want, "AH ({s},{t})");
            assert_eq!(fcq.distance(&fc, s, t), want, "FC ({s},{t})");
            assert_eq!(chq.distance(&ch, s, t), want, "CH ({s},{t})");
            assert_eq!(silcq.distance(g, &silc, s, t), want, "SILC ({s},{t})");
            assert_eq!(
                bd.distance(g, s, t).map(|d| d.length),
                want,
                "BiDijkstra ({s},{t})"
            );

            if want.is_some() {
                let reference = dijkstra_path(g, s, t).unwrap();
                for (name, p) in [
                    ("AH", ahq.path(&ah, s, t)),
                    ("FC", fcq.path(&fc, s, t)),
                    ("CH", chq.path(&ch, s, t)),
                    ("SILC", silcq.path(g, &silc, s, t)),
                    ("BiDijkstra", bd.path(g, s, t)),
                ] {
                    let p = p.unwrap_or_else(|| panic!("{name} lost path ({s},{t})"));
                    p.verify(g).unwrap_or_else(|e| panic!("{name} ({s},{t}): {e}"));
                    assert_eq!(
                        p.dist.length, reference.dist.length,
                        "{name} path length ({s},{t})"
                    );
                    assert_eq!(p.source(), s);
                    assert_eq!(p.target(), t);
                }
            }
        }
    }
}

#[test]
fn all_methods_on_road_network() {
    let g = hierarchical_grid(&HierarchicalGridConfig {
        width: 13,
        height: 13,
        seed: 1001,
        ..Default::default()
    });
    check_all_methods(&g, 6);
}

#[test]
fn all_methods_on_one_way_heavy_network() {
    let g = hierarchical_grid(&HierarchicalGridConfig {
        width: 11,
        height: 11,
        one_way: 0.35,
        local_edge_drop: 0.25,
        seed: 77,
        ..Default::default()
    });
    check_all_methods(&g, 5);
}

#[test]
fn all_methods_on_random_geometric() {
    let g = random_geometric(70, 500, 120, 13);
    check_all_methods(&g, 4);
}

#[test]
fn all_methods_on_fixtures() {
    check_all_methods(&fixtures::figure1_like(), 1);
    check_all_methods(&fixtures::ring(14), 1);
    check_all_methods(&fixtures::lattice(6, 6, 20), 2);
}

#[test]
fn many_seeds_spot_checks() {
    // Wider seed coverage with a sparse sample per network.
    for seed in [2, 3, 5, 8, 13, 21, 34, 55] {
        let g = hierarchical_grid(&HierarchicalGridConfig {
            width: 10,
            height: 10,
            seed,
            ..Default::default()
        });
        check_all_methods(&g, 9);
    }
}
