//! Delta exactness: a graph patched by [`ah_graph::WeightDelta`]s must
//! be **bit-identical** to an independently rebuilt graph at the final
//! weights, and every backend rebuilt on it — AH, CH, hub labels, the
//! sharded composition (refreshed incrementally, lane by lane) — must
//! answer randomized Q1–Q10 workloads bit-equal to the shared
//! brute-force oracle (`ah_tests::oracle`). This is the campaign that
//! pins the live-update pipeline: if apply ever drifts from
//! rebuild-from-scratch (weight clamping, nuance recomputation, closure
//! encoding), these tests fail first.

use std::collections::HashMap;
use std::sync::Arc;

use ah_ch::{ChIndex, ChQuery};
use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_graph::{Graph, GraphBuilder, NodeId, WeightChange, WeightDelta, CLOSED};
use ah_labels::LabelIndex;
use ah_shard::{ShardConfig, ShardedIndex, ShardedQuery};
use ah_tests::oracle;
use ah_workload::{generate_query_sets, WeightChurn};

fn network() -> Graph {
    ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 16,
        height: 16,
        seed: 2013,
        ..Default::default()
    })
}

/// Rebuilds `base` from scratch through [`GraphBuilder`] with every
/// change in `final_weights` applied — the independent construction the
/// delta-patched graph must be bit-identical to (the builder recomputes
/// nuances itself; nothing is shared with the apply path).
fn rebuild_with(base: &Graph, final_weights: &HashMap<(NodeId, NodeId), u32>) -> Graph {
    let mut b = GraphBuilder::new();
    for v in base.node_ids() {
        b.add_node(base.coord(v));
    }
    for (tail, arc) in base.edges() {
        let w = final_weights
            .get(&(tail, arc.head))
            .copied()
            .unwrap_or(arc.weight);
        b.add_edge(tail, arc.head, w.max(1));
    }
    b.build()
}

/// Chained random deltas (re-weights and closures), applied one by one,
/// equal a from-scratch rebuild at the final weights — CSR arrays,
/// nuances, content id, everything.
#[test]
fn chained_deltas_equal_scratch_rebuild() {
    let g = network();
    for seed in [1u64, 7, 23] {
        let plan = WeightChurn {
            rounds: 4,
            changes_per_round: 12,
            closure_fraction: 0.3,
            seed,
        }
        .plan(&g, 0);
        assert!(plan.closures() > 0, "seed {seed}: churn must close roads");

        // The final weight of every touched edge, in application order.
        let mut finals: HashMap<(NodeId, NodeId), u32> = HashMap::new();
        for round in &plan.rounds {
            for c in round.delta.changes() {
                finals.insert((c.tail, c.head), c.weight);
            }
        }
        let scratch = rebuild_with(&g, &finals);
        assert_eq!(
            plan.final_graph.csr_parts(),
            scratch.csr_parts(),
            "seed {seed}: delta-apply diverges from an independent rebuild"
        );
        assert_eq!(plan.final_graph.content_id(), scratch.content_id());
    }
}

/// Q1–Q10 bit-identity across all four serving backends after a churn:
/// every index rebuilt on the delta-patched graph answers exactly what
/// Dijkstra answers on the independently rebuilt graph — including
/// `s == t` and routes forced around closures.
#[test]
fn all_backends_bit_identical_after_deltas() {
    let g = network();
    let plan = WeightChurn {
        rounds: 3,
        changes_per_round: 10,
        closure_fraction: 0.25,
        seed: 42,
    }
    .plan(&g, 0);
    let patched = &plan.final_graph;

    let ah = Arc::new(AhIndex::build(patched, &BuildConfig::default()));
    let ch = ChIndex::build(patched);
    let labels = LabelIndex::build(patched, ch.order());
    let sharded = ShardedIndex::from_global(
        patched,
        ah.clone(),
        &ShardConfig {
            shards: 4,
            ..Default::default()
        },
    );

    let mut ahq = AhQuery::new();
    let mut chq = ChQuery::new();
    let mut shq = ShardedQuery::new();
    let sets = generate_query_sets(patched, 25, 9);
    let mut checked = 0usize;
    for set in &sets {
        for &(s, t) in &set.pairs {
            let want = oracle::distance(patched, s, t);
            assert_eq!(ahq.distance(&ah, s, t), want, "AH ({s},{t})");
            assert_eq!(chq.distance(&ch, s, t), want, "CH ({s},{t})");
            assert_eq!(labels.distance(s, t), want, "labels ({s},{t})");
            assert_eq!(shq.distance(&sharded, s, t), want, "sharded ({s},{t})");
            checked += 1;
        }
    }
    assert!(checked >= 100, "workload too small to pin identity");

    // Degenerate queries: s == t answers 0 on every backend, also at a
    // node whose outgoing roads were all touched by the churn.
    let touched = plan.rounds.last().unwrap().delta.changes()[0].tail;
    for s in [0u32, touched] {
        assert_eq!(ahq.distance(&ah, s, s), Some(0));
        assert_eq!(chq.distance(&ch, s, s), Some(0));
        assert_eq!(labels.distance(s, s), Some(0));
        assert_eq!(shq.distance(&sharded, s, s), Some(0));
    }
}

/// The staggered sharded refresh, chained delta after delta, stays
/// bit-equal to a from-scratch sharded build at every step — the
/// zero-downtime path can run forever without drifting.
#[test]
fn chained_sharded_refreshes_stay_exact() {
    let g = network();
    let cfg = ShardConfig {
        shards: 4,
        ..Default::default()
    };
    let mut current = ShardedIndex::build(&g, &cfg);
    let mut cur_graph = g.clone();
    let plan = WeightChurn {
        rounds: 3,
        changes_per_round: 8,
        closure_fraction: 0.2,
        seed: 5,
    }
    .plan(&g, 0);

    for (i, round) in plan.rounds.iter().enumerate() {
        let applied = round.delta.apply(&cur_graph).unwrap();
        let (fresh, report) = current.refresh(&applied.graph, &applied.touched, &cfg);
        assert!(report.certified, "round {i}: refresh lost certification");
        let scratch = ShardedIndex::build(&applied.graph, &cfg);
        let sets = generate_query_sets(&applied.graph, 10, i as u64);
        let mut qa = ShardedQuery::new();
        let mut qb = ShardedQuery::new();
        for set in &sets {
            for &(s, t) in &set.pairs {
                assert_eq!(
                    qa.distance(&fresh, s, t),
                    qb.distance(&scratch, s, t),
                    "round {i} ({s},{t})"
                );
            }
        }
        current = fresh;
        cur_graph = applied.graph;
    }
    assert_eq!(cur_graph.content_id(), plan.final_graph.content_id());
}

/// A closure-only delta: every closed road is priced at `CLOSED`, so
/// answers either detour (strictly cheaper than one closed hop) or pay
/// the sentinel — and both match Dijkstra on the patched graph.
#[test]
fn closures_reroute_exactly() {
    let g = network();
    // Close every outgoing arc of node 0.
    let changes: Vec<WeightChange> = g
        .out_edges(0)
        .iter()
        .map(|a| WeightChange::close(0, a.head))
        .collect();
    assert!(!changes.is_empty());
    let delta = WeightDelta::new(&g, changes).unwrap();
    let patched = delta.apply(&g).unwrap().graph;

    let ah = AhIndex::build(&patched, &BuildConfig::default());
    let mut q = AhQuery::new();
    let n = patched.num_nodes() as u32;
    for t in [1, n / 3, n / 2, n - 1] {
        let want = oracle::distance(&patched, 0, t);
        assert_eq!(q.distance(&ah, 0, t), want, "(0,{t})");
        // Leaving node 0 now costs at least one CLOSED hop.
        assert!(want.unwrap() >= CLOSED as u64, "(0,{t}) dodged the closures");
        // Arriving is untouched: the inbound arcs kept their weights.
        let back = oracle::distance(&patched, t, 0);
        assert_eq!(q.distance(&ah, t, 0), back);
        assert!(back.unwrap() < CLOSED as u64);
    }
}
