//! Property-based tests (proptest) on [`ah_graph::WeightDelta`]: the
//! algebra (compose, invert) and the `ah_store` codec must hold for
//! arbitrary graphs and change sets — including the boundary weights
//! `0` (clamped to 1 on apply), `1`, the largest finite weight, and
//! the [`CLOSED`] closure sentinel.

use ah_graph::{Graph, GraphBuilder, NodeId, Point, WeightChange, WeightDelta, CLOSED};
use ah_store::{Snapshot, SnapshotContents};
use proptest::prelude::*;

/// Strategy: a random strongly connected directed graph — a
/// bidirectional ring plus random extra edges, same shape as the oracle
/// property tests in `properties.rs`.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=24, proptest::collection::vec((0i32..400, 0i32..400, 1u32..50), 0..80)).prop_map(
        |(n, extra)| {
            let mut b = GraphBuilder::new();
            for i in 0..n {
                let x = ((i * 73) % 19) as i32 * 20;
                let y = ((i * 31) % 17) as i32 * 20;
                b.add_node(Point::new(x, y));
            }
            for i in 0..n as u32 {
                b.add_bidirectional_edge(i, (i + 1) % n as u32, 7);
            }
            for (xi, yi, w) in extra {
                let u = (xi as u32) % n as u32;
                let v = (yi as u32) % n as u32;
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        },
    )
}

/// Strategy: a new weight, biased hard toward the boundaries — zero
/// (raw, clamped on apply), the unit floor, the closure sentinel, and
/// the largest weight that is still an open road.
fn arb_weight() -> impl Strategy<Value = u32> {
    prop_oneof![
        2 => Just(0u32),
        2 => Just(1u32),
        2 => Just(CLOSED),
        1 => Just(CLOSED - 1),
        5 => 1u32..5_000,
    ]
}

/// Strategy: raw `(edge index, weight)` picks; `cut` maps the indices
/// onto whatever edges the generated graph actually has.
fn arb_raw_changes() -> impl Strategy<Value = Vec<(usize, u32)>> {
    proptest::collection::vec((0usize..10_000, arb_weight()), 1..12)
}

/// Cuts a delta against `g` from raw picks, resolving each index to a
/// real edge (duplicates collapse to the last change, per contract).
fn cut(g: &Graph, raw: &[(usize, u32)]) -> WeightDelta {
    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(tail, a)| (tail, a.head)).collect();
    let changes = raw.iter().map(|&(i, w)| {
        let (tail, head) = edges[i % edges.len()];
        WeightChange::new(tail, head, w)
    });
    WeightDelta::new(g, changes).expect("edges come from the graph itself")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Applying `d1 ∘ d2` in one shot equals applying `d1` then `d2` —
    /// bit-identical CSR arrays and content id — even when both rounds
    /// touch the same edge (later wins).
    #[test]
    fn compose_equals_sequential_application(
        g in arb_graph(),
        r1 in arb_raw_changes(),
        r2 in arb_raw_changes(),
    ) {
        let d1 = cut(&g, &r1);
        let mid = d1.apply(&g).unwrap().graph;
        let d2 = cut(&mid, &r2);
        let sequential = d2.apply(&mid).unwrap().graph;

        let composed = d1.compose(&d2);
        prop_assert_eq!(composed.base_id(), d1.base_id(), "compose keeps the first base");
        let at_once = composed.apply(&g).unwrap().graph;
        prop_assert_eq!(at_once.csr_parts(), sequential.csr_parts());
        prop_assert_eq!(at_once.content_id(), sequential.content_id());
    }

    /// `invert` undoes `apply` exactly: patching the patched graph with
    /// the inverse restores the base bit-for-bit, closures included.
    #[test]
    fn invert_round_trips_to_base(g in arb_graph(), r in arb_raw_changes()) {
        let d = cut(&g, &r);
        let patched = d.apply(&g).unwrap().graph;
        let inv = d.invert(&g).unwrap();
        prop_assert_eq!(inv.base_id(), patched.content_id(), "inverse is cut against the patched graph");
        let back = inv.apply(&patched).unwrap().graph;
        prop_assert_eq!(back.csr_parts(), g.csr_parts());
        prop_assert_eq!(back.content_id(), g.content_id());
    }

    /// The store codec is lossless: a delta written into snapshot bytes
    /// and decoded back compares equal — base id and every raw weight
    /// preserved unclamped, `0` and `CLOSED` included.
    #[test]
    fn store_codec_round_trips_boundary_weights(g in arb_graph(), r in arb_raw_changes()) {
        let d = cut(&g, &r);
        let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g).delta(&d));
        let snap = Snapshot::from_bytes(&bytes).unwrap();
        prop_assert_eq!(snap.delta.as_ref(), Some(&d));
    }
}

/// Each boundary weight individually survives the codec raw — `0` is
/// *not* clamped in storage (clamping belongs to apply), and `CLOSED`
/// is an ordinary `u32::MAX` on the wire.
#[test]
fn every_boundary_weight_is_stored_raw() {
    let mut b = GraphBuilder::new();
    for i in 0..4 {
        b.add_node(Point::new(i * 10, 0));
    }
    for i in 0..4u32 {
        b.add_bidirectional_edge(i, (i + 1) % 4, 9);
    }
    let g = b.build();

    for w in [0u32, 1, CLOSED - 1, CLOSED] {
        let d = WeightDelta::new(&g, [WeightChange::new(0, 1, w)]).unwrap();
        let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g).delta(&d));
        let got = Snapshot::from_bytes(&bytes).unwrap().delta.unwrap();
        assert_eq!(got.changes()[0].weight, w, "weight {w} must round-trip untouched");
        assert_eq!(got, d);
    }
}
