//! End-to-end loopback identity for the HTTP edge: distances served
//! over a real `127.0.0.1` socket must be **bit-equal** to direct
//! `AhQuery` answers for a randomized Q1–Q10 traffic mix — in both
//! unsharded and region-sharded (4-shard) modes — and path queries must
//! carry the same distances. Overload and drain behaviour at the HTTP
//! layer are covered by `crates/net/tests/edge_loopback.rs`; this suite
//! pins the *serving identity* across the full stack:
//!
//! ```text
//! TrafficSchedule → HTTP client → EdgeServer → serve_queue workers →
//! AhBackend / ShardedBackend → JSON → client-parsed distance
//! ```

use std::net::SocketAddr;
use std::sync::Arc;

use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_net::{EdgeConfig, EdgeServer};
use ah_server::{AhBackend, DistanceBackend, LabelBackend, Server, ServerConfig, ShardedBackend};
use ah_shard::{ShardConfig, ShardedIndex};
use ah_workload::{generate_query_sets, TrafficSchedule};

fn network() -> ah_graph::Graph {
    ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 18,
        height: 18,
        seed: 4242,
        ..Default::default()
    })
}

/// A Q1–Q10 interactive mix over the network, deterministic in `seed`.
fn traffic(g: &ah_graph::Graph, total: usize, seed: u64) -> Vec<(u32, u32)> {
    let sets = generate_query_sets(g, 30, seed);
    let stream = TrafficSchedule::interactive(total, 0.2, seed).generate(&sets);
    assert!(!stream.is_empty(), "degenerate workload");
    stream
}

/// Runs `client` against an edge serving `backend`, then drains.
fn with_edge<F: FnOnce(SocketAddr)>(backend: &dyn DistanceBackend, client: F) {
    let server = Server::new(ServerConfig::with_workers(3));
    let edge = EdgeServer::bind(
        "127.0.0.1:0",
        EdgeConfig {
            workers: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = edge.local_addr().unwrap();
    let handle = edge.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| edge.serve(&server, backend));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| client(addr)));
        handle.shutdown();
        serving.join().unwrap().unwrap();
        if let Err(p) = outcome {
            std::panic::resume_unwind(p);
        }
    });
}

/// Issues pipelined GETs over one keep-alive connection and returns
/// the responses (pipeline order == request order; every one must be
/// a 200).
fn fetch_responses(addr: SocketAddr, targets: &[String]) -> Vec<ah_net::blocking::Response> {
    let mut c = ah_net::blocking::Client::connect(addr).unwrap();
    // Pipeline in bounded windows so huge workloads do not need a
    // matching server-side pipeline cap.
    let mut responses = Vec::with_capacity(targets.len());
    for window in targets.chunks(32) {
        let mut burst = String::new();
        for t in window {
            burst.push_str(&format!("GET {t} HTTP/1.1\r\nHost: i\r\n\r\n"));
        }
        c.send(burst.as_bytes()).unwrap();
        for _ in window {
            let resp = c.recv().expect("pipelined response");
            assert_eq!(resp.status, 200, "{}", resp.text());
            responses.push(resp);
        }
    }
    responses
}

#[test]
fn unsharded_http_distances_bit_equal_ahquery_on_q1_q10_mix() {
    let g = network();
    let idx = AhIndex::build(&g, &BuildConfig::default());
    let stream = traffic(&g, 400, 9001);
    let mut q = AhQuery::new();
    let want: Vec<Option<u64>> = stream.iter().map(|&(s, t)| q.distance(&idx, s, t)).collect();

    let backend = AhBackend::new(&idx);
    with_edge(&backend, |addr| {
        let targets: Vec<String> = stream
            .iter()
            .map(|(s, t)| format!("/v1/distance?src={s}&dst={t}"))
            .collect();
        let responses = fetch_responses(addr, &targets);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(
                resp.distance(),
                want[i],
                "pair {:?} over HTTP diverged: {}",
                stream[i],
                resp.text()
            );
        }
    });
}

#[test]
fn sharded_http_distances_bit_equal_ahquery_on_q1_q10_mix() {
    let g = network();
    let global = Arc::new(AhIndex::build(&g, &BuildConfig::default()));
    let sharded = ShardedIndex::from_global(
        &g,
        global.clone(),
        &ShardConfig {
            shards: 4,
            ..Default::default()
        },
    );
    let stream = traffic(&g, 400, 1337);
    // The mix must genuinely exercise boundary composition.
    assert!(
        stream
            .iter()
            .any(|&(s, t)| sharded.shard_of(s) != sharded.shard_of(t)),
        "workload never straddles shards"
    );
    let mut q = AhQuery::new();
    let want: Vec<Option<u64>> = stream
        .iter()
        .map(|&(s, t)| q.distance(&global, s, t))
        .collect();

    let backend = ShardedBackend::new(&sharded);
    with_edge(&backend, |addr| {
        let targets: Vec<String> = stream
            .iter()
            .map(|(s, t)| format!("/v1/distance?src={s}&dst={t}"))
            .collect();
        let responses = fetch_responses(addr, &targets);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(
                resp.distance(),
                want[i],
                "sharded pair {:?} over HTTP diverged: {}",
                stream[i],
                resp.text()
            );
        }
    });
}

/// The hub-labeling backend behind the same HTTP edge: distances over
/// the socket bit-equal the in-process oracle (`AhQuery` — itself
/// already proven equal to the raw label merge in `label_identity.rs`),
/// and `/metrics` names the serving backend.
#[test]
fn labels_http_distances_bit_equal_ahquery_on_q1_q10_mix() {
    let g = network();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let ch = ah_ch::ChIndex::build(&g);
    let labels = ah_labels::LabelIndex::build(&g, ch.order());
    let stream = traffic(&g, 400, 0x1AB5);
    let mut q = AhQuery::new();
    let want: Vec<Option<u64>> = stream.iter().map(|&(s, t)| q.distance(&ah, s, t)).collect();

    let backend = LabelBackend::new(&labels, &ah);
    with_edge(&backend, |addr| {
        let targets: Vec<String> = stream
            .iter()
            .map(|(s, t)| format!("/v1/distance?src={s}&dst={t}"))
            .collect();
        let responses = fetch_responses(addr, &targets);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(
                resp.distance(),
                want[i],
                "labels pair {:?} over HTTP diverged: {}",
                stream[i],
                resp.text()
            );
        }
        // Path queries still work (delegated to AH) with matching
        // distances, and the exposition names the backend.
        let (s, t) = stream[0];
        let extras = fetch_responses(
            addr,
            &[format!("/v1/path?src={s}&dst={t}"), "/metrics".to_string()],
        );
        assert_eq!(extras[0].distance(), want[0], "path distance diverged");
        assert!(
            extras[1].text().contains("ah_edge_backend{name=\"labels\"} 1"),
            "/metrics does not name the labels backend:\n{}",
            extras[1].text()
        );
    });
}

#[test]
fn http_path_queries_agree_with_distance_queries() {
    let g = network();
    let idx = AhIndex::build(&g, &BuildConfig::default());
    let stream = traffic(&g, 60, 777);
    let mut q = AhQuery::new();

    let backend = AhBackend::new(&idx);
    with_edge(&backend, |addr| {
        let targets: Vec<String> = stream
            .iter()
            .map(|(s, t)| format!("/v1/path?src={s}&dst={t}"))
            .collect();
        let responses = fetch_responses(addr, &targets);
        for (i, resp) in responses.iter().enumerate() {
            let (s, t) = stream[i];
            let want = q.distance(&idx, s, t);
            assert_eq!(resp.distance(), want, "path distance for ({s},{t})");
            if want.is_some() {
                assert!(resp.text().contains("\"hops\":"), "{}", resp.text());
            }
        }
    });
}

/// The serving cache is shared across HTTP workers: repeated pairs in
/// the stream must produce cache hits visible in the JSON responses,
/// with identical distances either way.
#[test]
fn repeated_pairs_hit_the_cache_with_identical_answers() {
    let g = network();
    let idx = AhIndex::build(&g, &BuildConfig::default());
    let backend = AhBackend::new(&idx);
    with_edge(&backend, |addr| {
        let targets: Vec<String> = (0..40)
            .map(|_| "/v1/distance?src=3&dst=200".to_string())
            .collect();
        let responses = fetch_responses(addr, &targets);
        let first = responses[0].distance();
        assert!(responses.iter().all(|r| r.distance() == first));
        assert!(
            responses
                .iter()
                .any(|r| r.text().contains("\"cache_hit\":true")),
            "no cache hit in 40 repeats"
        );
    });
}
