//! End-to-end loopback identity for the HTTP edge: distances served
//! over a real `127.0.0.1` socket must be **bit-equal** to direct
//! `AhQuery` answers for a randomized Q1–Q10 traffic mix — in both
//! unsharded and region-sharded (4-shard) modes — and path queries must
//! carry the same distances. Overload and drain behaviour at the HTTP
//! layer are covered by `crates/net/tests/edge_loopback.rs`; this suite
//! pins the *serving identity* across the full stack:
//!
//! ```text
//! TrafficSchedule → HTTP client → EdgeServer → serve_queue workers →
//! AhBackend / ShardedBackend → JSON → client-parsed distance
//! ```

use std::net::SocketAddr;
use std::sync::Arc;

use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_net::{EdgeConfig, EdgeServer};
use ah_server::{
    AhBackend, DijkstraBackend, DistanceBackend, LabelBackend, PoiSet, Server, ServerConfig,
    ShardedBackend, POI_CATEGORIES,
};
use ah_shard::{ShardConfig, ShardedIndex};
use ah_tests::oracle;
use ah_workload::{generate_query_sets, TrafficSchedule};

fn network() -> ah_graph::Graph {
    ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 18,
        height: 18,
        seed: 4242,
        ..Default::default()
    })
}

/// A Q1–Q10 interactive mix over the network, deterministic in `seed`.
fn traffic(g: &ah_graph::Graph, total: usize, seed: u64) -> Vec<(u32, u32)> {
    let sets = generate_query_sets(g, 30, seed);
    let stream = TrafficSchedule::interactive(total, 0.2, seed).generate(&sets);
    assert!(!stream.is_empty(), "degenerate workload");
    stream
}

/// Runs `client` against an edge serving `backend`, then drains.
fn with_edge<F: FnOnce(SocketAddr)>(backend: &dyn DistanceBackend, client: F) {
    let server = Server::new(ServerConfig::with_workers(3));
    let edge = EdgeServer::bind(
        "127.0.0.1:0",
        EdgeConfig {
            workers: 3,
            ..Default::default()
        },
    )
    .unwrap();
    let addr = edge.local_addr().unwrap();
    let handle = edge.handle();
    std::thread::scope(|scope| {
        let serving = scope.spawn(|| edge.serve(&server, backend));
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| client(addr)));
        handle.shutdown();
        serving.join().unwrap().unwrap();
        if let Err(p) = outcome {
            std::panic::resume_unwind(p);
        }
    });
}

/// Issues pipelined GETs over one keep-alive connection and returns
/// the responses (pipeline order == request order; every one must be
/// a 200).
fn fetch_responses(addr: SocketAddr, targets: &[String]) -> Vec<ah_net::blocking::Response> {
    let mut c = ah_net::blocking::Client::connect(addr).unwrap();
    // Pipeline in bounded windows so huge workloads do not need a
    // matching server-side pipeline cap.
    let mut responses = Vec::with_capacity(targets.len());
    for window in targets.chunks(32) {
        let mut burst = String::new();
        for t in window {
            burst.push_str(&format!("GET {t} HTTP/1.1\r\nHost: i\r\n\r\n"));
        }
        c.send(burst.as_bytes()).unwrap();
        for _ in window {
            let resp = c.recv().expect("pipelined response");
            assert_eq!(resp.status, 200, "{}", resp.text());
            responses.push(resp);
        }
    }
    responses
}

#[test]
fn unsharded_http_distances_bit_equal_ahquery_on_q1_q10_mix() {
    let g = network();
    let idx = AhIndex::build(&g, &BuildConfig::default());
    let stream = traffic(&g, 400, 9001);
    let mut q = AhQuery::new();
    let want: Vec<Option<u64>> = stream.iter().map(|&(s, t)| q.distance(&idx, s, t)).collect();

    let backend = AhBackend::new(&idx);
    with_edge(&backend, |addr| {
        let targets: Vec<String> = stream
            .iter()
            .map(|(s, t)| format!("/v1/distance?src={s}&dst={t}"))
            .collect();
        let responses = fetch_responses(addr, &targets);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(
                resp.distance(),
                want[i],
                "pair {:?} over HTTP diverged: {}",
                stream[i],
                resp.text()
            );
        }
    });
}

#[test]
fn sharded_http_distances_bit_equal_ahquery_on_q1_q10_mix() {
    let g = network();
    let global = Arc::new(AhIndex::build(&g, &BuildConfig::default()));
    let sharded = ShardedIndex::from_global(
        &g,
        global.clone(),
        &ShardConfig {
            shards: 4,
            ..Default::default()
        },
    );
    let stream = traffic(&g, 400, 1337);
    // The mix must genuinely exercise boundary composition.
    assert!(
        stream
            .iter()
            .any(|&(s, t)| sharded.shard_of(s) != sharded.shard_of(t)),
        "workload never straddles shards"
    );
    let mut q = AhQuery::new();
    let want: Vec<Option<u64>> = stream
        .iter()
        .map(|&(s, t)| q.distance(&global, s, t))
        .collect();

    let backend = ShardedBackend::new(&sharded);
    with_edge(&backend, |addr| {
        let targets: Vec<String> = stream
            .iter()
            .map(|(s, t)| format!("/v1/distance?src={s}&dst={t}"))
            .collect();
        let responses = fetch_responses(addr, &targets);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(
                resp.distance(),
                want[i],
                "sharded pair {:?} over HTTP diverged: {}",
                stream[i],
                resp.text()
            );
        }
    });
}

/// The hub-labeling backend behind the same HTTP edge: distances over
/// the socket bit-equal the in-process oracle (`AhQuery` — itself
/// already proven equal to the raw label merge in `label_identity.rs`),
/// and `/metrics` names the serving backend.
#[test]
fn labels_http_distances_bit_equal_ahquery_on_q1_q10_mix() {
    let g = network();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let ch = ah_ch::ChIndex::build(&g);
    let labels = ah_labels::LabelIndex::build(&g, ch.order());
    let stream = traffic(&g, 400, 0x1AB5);
    let mut q = AhQuery::new();
    let want: Vec<Option<u64>> = stream.iter().map(|&(s, t)| q.distance(&ah, s, t)).collect();

    let backend = LabelBackend::new(&labels, &ah);
    with_edge(&backend, |addr| {
        let targets: Vec<String> = stream
            .iter()
            .map(|(s, t)| format!("/v1/distance?src={s}&dst={t}"))
            .collect();
        let responses = fetch_responses(addr, &targets);
        for (i, resp) in responses.iter().enumerate() {
            assert_eq!(
                resp.distance(),
                want[i],
                "labels pair {:?} over HTTP diverged: {}",
                stream[i],
                resp.text()
            );
        }
        // Path queries still work (delegated to AH) with matching
        // distances, and the exposition names the backend.
        let (s, t) = stream[0];
        let extras = fetch_responses(
            addr,
            &[format!("/v1/path?src={s}&dst={t}"), "/metrics".to_string()],
        );
        assert_eq!(extras[0].distance(), want[0], "path distance diverged");
        assert!(
            extras[1].text().contains("ah_edge_backend{name=\"labels\"} 1"),
            "/metrics does not name the labels backend:\n{}",
            extras[1].text()
        );
    });
}

#[test]
fn http_path_queries_agree_with_distance_queries() {
    let g = network();
    let idx = AhIndex::build(&g, &BuildConfig::default());
    let stream = traffic(&g, 60, 777);
    let mut q = AhQuery::new();

    let backend = AhBackend::new(&idx);
    with_edge(&backend, |addr| {
        let targets: Vec<String> = stream
            .iter()
            .map(|(s, t)| format!("/v1/path?src={s}&dst={t}"))
            .collect();
        let responses = fetch_responses(addr, &targets);
        for (i, resp) in responses.iter().enumerate() {
            let (s, t) = stream[i];
            let want = q.distance(&idx, s, t);
            assert_eq!(resp.distance(), want, "path distance for ({s},{t})");
            if want.is_some() {
                assert!(resp.text().contains("\"hops\":"), "{}", resp.text());
            }
        }
    });
}

/// Renders the exact JSON body the edge must produce for one oracle
/// via answer — bit-equality, not tolerance.
fn expected_via_body(g: &ah_graph::Graph, s: u32, t: u32, cat: u32, pois: &PoiSet) -> String {
    match oracle::via(g, s, t, pois.category(cat)) {
        Some(v) => format!(
            "{{\"src\":{s},\"dst\":{t},\"cat\":{cat},\"poi\":{},\"total\":{},\"to_poi\":{},\"from_poi\":{},\"cache_hit\":false}}",
            v.poi, v.total, v.to_poi, v.from_poi
        ),
        None => format!(
            "{{\"src\":{s},\"dst\":{t},\"cat\":{cat},\"poi\":null,\"total\":null,\"to_poi\":null,\"from_poi\":null,\"cache_hit\":false}}"
        ),
    }
}

/// Randomized via/knn/matrix traffic over a live socket, every body
/// bit-equal to the shared oracle's answer, for one backend.
fn check_scenarios_over_http(g: &ah_graph::Graph, backend: &dyn DistanceBackend, name: &str) {
    let pois = PoiSet::default_for(g.num_nodes());
    let mut stream = traffic(g, 32, 0x5CE2);
    stream.sort_unstable();
    stream.dedup(); // distinct (s,t): every via answer is a cache miss
    with_edge(backend, |addr| {
        let mut c = ah_net::blocking::Client::connect(addr).unwrap();
        for (i, &(s, t)) in stream.iter().enumerate() {
            let cat = (i as u32) % POI_CATEGORIES;
            let resp = c.get(&format!("/v1/via?src={s}&dst={t}&cat={cat}")).unwrap();
            assert_eq!(resp.status, 200, "{name}: {}", resp.text());
            assert_eq!(
                resp.text(),
                expected_via_body(g, s, t, cat, &pois),
                "{name}: via ({s},{t}) cat {cat} diverged from the oracle"
            );

            let k = 1 + (i % 5);
            let resp = c.get(&format!("/v1/knn?src={s}&cat={cat}&k={k}")).unwrap();
            assert_eq!(resp.status, 200, "{name}: {}", resp.text());
            let results: Vec<String> = oracle::knn(g, s, pois.category(cat), k)
                .iter()
                .map(|&(p, d)| format!("{{\"poi\":{p},\"distance\":{d}}}"))
                .collect();
            assert_eq!(
                resp.text(),
                format!(
                    "{{\"src\":{s},\"cat\":{cat},\"k\":{k},\"results\":[{}]}}",
                    results.join(",")
                ),
                "{name}: knn from {s} cat {cat} k {k} diverged from the oracle"
            );
        }
        for window in stream.chunks(6) {
            let sources: Vec<u32> = window.iter().map(|p| p.0).collect();
            let targets: Vec<u32> = window.iter().map(|p| p.1).collect();
            let body = format!(
                "{{\"sources\":[{}],\"targets\":[{}]}}",
                sources.iter().map(u32::to_string).collect::<Vec<_>>().join(","),
                targets.iter().map(u32::to_string).collect::<Vec<_>>().join(",")
            );
            let resp = c.post_json("/v1/matrix", body.as_bytes()).unwrap();
            assert_eq!(resp.status, 200, "{name}: {}", resp.text());
            let rows: Vec<String> = oracle::matrix(g, &sources, &targets)
                .iter()
                .map(|row| {
                    let cells: Vec<String> = row
                        .iter()
                        .map(|c| c.map_or("null".to_string(), |d| d.to_string()))
                        .collect();
                    format!("[{}]", cells.join(","))
                })
                .collect();
            assert_eq!(
                resp.text(),
                format!(
                    "{{\"rows\":{},\"cols\":{},\"distances\":[{}]}}",
                    sources.len(),
                    targets.len(),
                    rows.join(",")
                ),
                "{name}: matrix {sources:?} × {targets:?} diverged from the oracle"
            );
        }
    });
}

/// The tentpole identity: `/v1/via`, `/v1/knn` and `POST /v1/matrix`
/// answers over a real socket are bit-equal to the brute-force oracle
/// across every point-query serving backend.
#[test]
fn scenario_endpoints_bit_equal_oracle_across_backends() {
    let g = network();
    let idx = Arc::new(AhIndex::build(&g, &BuildConfig::default()));
    let ch = ah_ch::ChIndex::build(&g);
    let labels = ah_labels::LabelIndex::build(&g, ch.order());
    let sharded = ShardedIndex::from_global(
        &g,
        idx.clone(),
        &ShardConfig {
            shards: 4,
            ..Default::default()
        },
    );

    let ah = AhBackend::new(&idx);
    check_scenarios_over_http(&g, &ah, "ah");
    let dij = DijkstraBackend::new(&g);
    check_scenarios_over_http(&g, &dij, "dijkstra");
    let lab = LabelBackend::new(&labels, &idx);
    check_scenarios_over_http(&g, &lab, "labels");
    let sh = ShardedBackend::new(&sharded);
    check_scenarios_over_http(&g, &sh, "sharded");
}

/// Scenario-endpoint input validation over the socket: malformed
/// matrix bodies and parameters answer `400` without dropping the
/// connection, an oversized table answers `413`, and a body beyond the
/// HTTP cap answers `413` at the framing layer.
#[test]
fn scenario_endpoints_reject_malformed_and_oversized_requests() {
    let g = network();
    let idx = AhIndex::build(&g, &BuildConfig::default());
    let backend = AhBackend::new(&idx);
    with_edge(&backend, |addr| {
        let mut c = ah_net::blocking::Client::connect(addr).unwrap();
        for bad in [
            "not json at all",
            "{\"sources\":[1,2]}",
            "{\"sources\":\"1\",\"targets\":[2]}",
            "{\"sources\":[],\"targets\":[]}",
            "{\"sources\":[1,x],\"targets\":[2]}",
            "{\"sources\":[1,-2],\"targets\":[2]}",
        ] {
            let resp = c.post_json("/v1/matrix", bad.as_bytes()).unwrap();
            assert_eq!(resp.status, 400, "body {bad:?}: {}", resp.text());
        }
        // Semantically oversized: parses fine, exceeds the per-side cap.
        let wide: Vec<String> = (0..65u32).map(|v| v.to_string()).collect();
        let body = format!("{{\"sources\":[{}],\"targets\":[0]}}", wide.join(","));
        let resp = c.post_json("/v1/matrix", body.as_bytes()).unwrap();
        assert_eq!(resp.status, 413, "{}", resp.text());
        // Scenario GET parameter validation.
        for target in [
            "/v1/via?src=1&dst=2",
            "/v1/via?src=1&dst=2&cat=x",
            "/v1/knn?src=1&cat=0",
            "/v1/knn?src=1&cat=0&k=0",
            "/v1/knn?src=1&cat=0&k=10000",
        ] {
            let resp = c.get(target).unwrap();
            assert_eq!(resp.status, 400, "{target}: {}", resp.text());
        }
        // All of the above were well-framed: the connection survived.
        assert_eq!(c.get("/healthz").unwrap().status, 200);
        // A body beyond the HTTP byte cap is a framing-level 413.
        let mut c2 = ah_net::blocking::Client::connect(addr).unwrap();
        let huge = vec![b'x'; 8 * 1024];
        let resp = c2.post_json("/v1/matrix", &huge).unwrap();
        assert_eq!(resp.status, 413, "{}", resp.text());
    });
}

/// The serving cache is shared across HTTP workers: repeated pairs in
/// the stream must produce cache hits visible in the JSON responses,
/// with identical distances either way.
#[test]
fn repeated_pairs_hit_the_cache_with_identical_answers() {
    let g = network();
    let idx = AhIndex::build(&g, &BuildConfig::default());
    let backend = AhBackend::new(&idx);
    with_edge(&backend, |addr| {
        let targets: Vec<String> = (0..40)
            .map(|_| "/v1/distance?src=3&dst=200".to_string())
            .collect();
        let responses = fetch_responses(addr, &targets);
        let first = responses[0].distance();
        assert!(responses.iter().all(|r| r.distance() == first));
        assert!(
            responses
                .iter()
                .any(|r| r.text().contains("\"cache_hit\":true")),
            "no cache hit in 40 repeats"
        );
    });
}
