//! Failure injection and degenerate inputs across the whole stack.

use ah_ch::{ChIndex, ChQuery};
use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_fc::{FcIndex, FcQuery};
use ah_graph::{GraphBuilder, Point};
use ah_silc::{SilcIndex, SilcQuery};

#[test]
fn single_node_graph() {
    let mut b = GraphBuilder::new();
    b.add_node(Point::new(5, 5));
    let g = b.build();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let mut q = AhQuery::new();
    assert_eq!(q.distance(&ah, 0, 0), Some(0));
    let p = q.path(&ah, 0, 0).unwrap();
    assert_eq!(p.nodes, vec![0]);
}

#[test]
fn two_isolated_nodes() {
    let mut b = GraphBuilder::new();
    b.add_node(Point::new(0, 0));
    b.add_node(Point::new(100, 100));
    let g = b.build();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let ch = ChIndex::build(&g);
    let fc = FcIndex::build(&g);
    let silc = SilcIndex::build(&g);
    let mut ahq = AhQuery::new();
    let mut chq = ChQuery::new();
    let mut fcq = FcQuery::new();
    let mut silcq = SilcQuery::new();
    assert_eq!(ahq.distance(&ah, 0, 1), None);
    assert_eq!(chq.distance(&ch, 0, 1), None);
    assert_eq!(fcq.distance(&fc, 0, 1), None);
    assert_eq!(silcq.distance(&g, &silc, 0, 1), None);
    assert!(ahq.path(&ah, 0, 1).is_none());
}

#[test]
fn directed_sink_and_source() {
    // 0 → 1 → 2; node 0 unreachable from anywhere, 2 reaches nothing.
    let mut b = GraphBuilder::new();
    for i in 0..3 {
        b.add_node(Point::new(i * 50, 0));
    }
    b.add_edge(0, 1, 3);
    b.add_edge(1, 2, 4);
    let g = b.build();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let mut q = AhQuery::new();
    assert_eq!(q.distance(&ah, 0, 2), Some(7));
    assert_eq!(q.distance(&ah, 2, 0), None);
    assert_eq!(q.distance(&ah, 1, 0), None);
    let p = q.path(&ah, 0, 2).unwrap();
    assert_eq!(p.nodes, vec![0, 1, 2]);
}

#[test]
fn coincident_coordinates() {
    // Several nodes share coordinates: grids cannot separate them, SILC
    // needs its exception lists, everything must stay exact.
    let mut b = GraphBuilder::new();
    for i in 0..6 {
        b.add_node(Point::new((i / 2) * 10, 0)); // pairs share a point
    }
    for i in 0..6u32 {
        b.add_bidirectional_edge(i, (i + 1) % 6, i + 1);
    }
    let g = b.build();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let silc = SilcIndex::build(&g);
    let mut q = AhQuery::new();
    let mut sq = SilcQuery::new();
    for s in 0..6u32 {
        for t in 0..6u32 {
            let want = ah_search::dijkstra_distance(&g, s, t).map(|d| d.length);
            assert_eq!(q.distance(&ah, s, t), want, "AH ({s},{t})");
            assert_eq!(sq.distance(&g, &silc, s, t), want, "SILC ({s},{t})");
        }
    }
}

#[test]
fn huge_weights_do_not_overflow() {
    // Path sums exceed u32: distances must be exact u64.
    let mut b = GraphBuilder::new();
    for i in 0..5 {
        b.add_node(Point::new(i * 1000, 0));
    }
    for i in 0..4u32 {
        b.add_bidirectional_edge(i, i + 1, u32::MAX / 2);
    }
    let g = b.build();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let mut q = AhQuery::new();
    let expect = 4u64 * (u32::MAX / 2) as u64;
    assert_eq!(q.distance(&ah, 0, 4), Some(expect));
    assert!(expect > u32::MAX as u64);
}

#[test]
fn dense_clique_contracts_fine() {
    // Worst case for contraction: a clique has no low-degree nodes.
    let n = 12u32;
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add_node(Point::new((i as i32 % 4) * 50, (i as i32 / 4) * 50));
    }
    for i in 0..n {
        for j in 0..n {
            if i != j {
                b.add_edge(i, j, 10 + (i * 7 + j * 13) % 90);
            }
        }
    }
    let g = b.build();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let ch = ChIndex::build(&g);
    let mut ahq = AhQuery::new();
    let mut chq = ChQuery::new();
    for s in 0..n {
        for t in 0..n {
            let want = ah_search::dijkstra_distance(&g, s, t).map(|d| d.length);
            assert_eq!(ahq.distance(&ah, s, t), want);
            assert_eq!(chq.distance(&ch, s, t), want);
        }
    }
}

#[test]
fn long_thin_network() {
    // A 200-node corridor: deep hierarchies in one dimension.
    let g = ah_data::fixtures::line(200, 9);
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let mut q = AhQuery::new();
    for (s, t) in [(0u32, 199u32), (199, 0), (7, 133), (150, 3)] {
        assert_eq!(
            q.distance(&ah, s, t),
            Some(s.abs_diff(t) as u64),
            "({s},{t})"
        );
    }
    let p = q.path(&ah, 0, 199).unwrap();
    p.verify(&g).unwrap();
    assert_eq!(p.num_edges(), 199);
}

#[test]
fn parallel_and_self_edges_in_input() {
    let mut b = GraphBuilder::new();
    let a = b.add_node(Point::new(0, 0));
    let c = b.add_node(Point::new(10, 0));
    b.add_edge(a, a, 1); // self-loop: dropped
    b.add_edge(a, c, 9);
    b.add_edge(a, c, 4); // parallel: min kept
    b.add_edge(c, a, 2);
    let g = b.build();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let mut q = AhQuery::new();
    assert_eq!(q.distance(&ah, a, c), Some(4));
    assert_eq!(q.distance(&ah, c, a), Some(2));
}
