//! Hub-labeling exactness: `ah_labels` answers must be **bit-equal** to
//! `AhQuery` and to the shared brute-force oracle
//! (`ah_tests::oracle`) on randomized Q1–Q10 workloads over several
//! synthetic road networks — including unreachable pairs on
//! one-way-heavy grids and the s == t diagonal.

use std::sync::Arc;

use ah_ch::ChIndex;
use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_labels::LabelIndex;
use ah_server::{DistanceBackend, LabelBackend};
use ah_tests::oracle;
use ah_workload::generate_query_sets;

fn networks() -> Vec<(&'static str, ah_graph::Graph)> {
    let grid = |w, h, seed, one_way| {
        ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
            width: w,
            height: h,
            seed,
            one_way,
            ..Default::default()
        })
    };
    vec![
        ("grid16", grid(16, 16, 2013, 0.05)),
        ("grid20_oneway", grid(20, 20, 77, 0.25)),
        ("grid12_tall", grid(8, 18, 5, 0.0)),
        ("lattice9", ah_data::fixtures::lattice(9, 9, 100)),
    ]
}

/// Q1–Q10 identity across networks: the label backend, the raw label
/// index, AH, and bidirectional Dijkstra all agree bit-for-bit.
#[test]
fn q1_to_q10_labels_equal_ah_and_dijkstra() {
    for (name, g) in networks() {
        let ah = Arc::new(AhIndex::build(&g, &BuildConfig::default()));
        let ch = ChIndex::build(&g);
        let labels = LabelIndex::build(&g, ch.order());
        let backend = LabelBackend::new(&labels, &ah);
        let mut session = backend.make_session();
        let mut aq = AhQuery::new();

        let sets = generate_query_sets(&g, 30, 0xAB5EED);
        for set in &sets {
            for &(s, t) in &set.pairs {
                let want = aq.distance(&ah, s, t);
                assert_eq!(
                    labels.distance(s, t),
                    want,
                    "{name} Q{} labels vs AH ({s},{t})",
                    set.index
                );
                assert_eq!(
                    session.distance(s, t),
                    want,
                    "{name} Q{} backend vs AH ({s},{t})",
                    set.index
                );
                assert_eq!(
                    oracle::distance(&g, s, t),
                    want,
                    "{name} Q{} oracle vs AH ({s},{t})",
                    set.index
                );
            }
        }
    }
}

/// The trivial diagonal: every s == t pair answers `Some(0)`.
#[test]
fn self_queries_are_zero() {
    let (_, g) = networks().remove(1);
    let ch = ChIndex::build(&g);
    let labels = LabelIndex::build(&g, ch.order());
    for v in (0..g.num_nodes() as u32).step_by(7) {
        assert_eq!(labels.distance(v, v), Some(0), "d({v},{v})");
    }
}

/// Unreachable pairs: on a two-component graph the label query returns
/// `None` exactly where Dijkstra does — and at least one such pair must
/// exist, or the test is vacuous.
#[test]
fn unreachable_pairs_are_none() {
    // Two disjoint lattices glued into one graph index space: nodes of
    // the second component are offset by the first's node count.
    let a = ah_data::fixtures::lattice(5, 5, 100);
    let mut b = ah_graph::GraphBuilder::new();
    for &p in a.coords() {
        b.add_node(p);
    }
    for v in 0..a.num_nodes() as u32 {
        for arc in a.out_edges(v) {
            b.add_edge(v, arc.head, arc.weight);
        }
    }
    // Second component: a far-away ring, no edges to the first.
    let off = a.num_nodes() as u32;
    for i in 0..6u32 {
        b.add_node(ah_graph::Point::new(10_000 + i as i32, 10_000));
    }
    for i in 0..6u32 {
        b.add_bidirectional_edge(off + i, off + (i + 1) % 6, 3);
    }
    let g = b.build();

    let ch = ChIndex::build(&g);
    let labels = LabelIndex::build(&g, ch.order());
    let mut crossing = 0usize;
    for s in (0..g.num_nodes() as u32).step_by(3) {
        let want_row = oracle::dists_from(&g, s);
        for t in (0..g.num_nodes() as u32).step_by(4) {
            let want = want_row[t as usize];
            assert_eq!(labels.distance(s, t), want, "({s},{t})");
            if want.is_none() {
                crossing += 1;
            }
        }
    }
    assert!(crossing > 0, "no unreachable pairs exercised");
}

/// The ordering export used by the labels build: `Hierarchy::
/// contraction_order()` is exactly the inverse of the rank array, i.e.
/// the same permutation `ChIndex::order()` reports.
#[test]
fn hierarchy_contraction_order_matches_ch_order() {
    let (_, g) = networks().remove(0);
    let ch = ChIndex::build(&g);
    assert_eq!(ch.order(), &ch.hierarchy().contraction_order()[..]);
}
