//! Property-based tests (proptest) on the distance oracles and their
//! substrates.

use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_graph::{Graph, GraphBuilder, Point};
use ah_search::dijkstra_distance;
use proptest::prelude::*;

/// Strategy: a random connected-ish directed graph with coordinates. Node
/// count 2..=24, coordinates in a small box, random directed edges plus a
/// bidirectional ring so everything stays strongly connected.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2usize..=24, proptest::collection::vec((0i32..400, 0i32..400, 1u32..50), 0..80)).prop_map(
        |(n, extra)| {
            let mut b = GraphBuilder::new();
            for i in 0..n {
                // Spread nodes deterministically; the extra edges carry the
                // randomness.
                let x = ((i * 73) % 19) as i32 * 20;
                let y = ((i * 31) % 17) as i32 * 20;
                b.add_node(Point::new(x, y));
            }
            for i in 0..n as u32 {
                b.add_bidirectional_edge(i, (i + 1) % n as u32, 7);
            }
            for (xi, yi, w) in extra {
                let u = (xi as u32) % n as u32;
                let v = (yi as u32) % n as u32;
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            b.build()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// AH distances equal Dijkstra distances on arbitrary strongly
    /// connected graphs, for all pairs.
    #[test]
    fn ah_matches_dijkstra(g in arb_graph()) {
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let mut q = AhQuery::new();
        let n = g.num_nodes() as u32;
        for s in 0..n {
            for t in 0..n {
                let want = dijkstra_distance(&g, s, t).map(|d| d.length);
                prop_assert_eq!(q.distance(&idx, s, t), want, "pair ({}, {})", s, t);
            }
        }
    }

    /// Every AH path is a valid path of the reported length with correct
    /// endpoints.
    #[test]
    fn ah_paths_are_valid(g in arb_graph()) {
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let mut q = AhQuery::new();
        let n = g.num_nodes() as u32;
        for s in (0..n).step_by(3) {
            for t in (0..n).step_by(2) {
                if let Some(p) = q.path(&idx, s, t) {
                    prop_assert!(p.verify(&g).is_ok(), "invalid path for ({}, {}): {:?}", s, t, p.nodes);
                    prop_assert_eq!(p.source(), s);
                    prop_assert_eq!(p.target(), t);
                }
            }
        }
    }

    /// The oracle respects the triangle inequality (it is a true metric
    /// closure of the positively weighted graph).
    #[test]
    fn triangle_inequality(g in arb_graph()) {
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let mut q = AhQuery::new();
        let n = g.num_nodes() as u32;
        for a in (0..n).step_by(4) {
            for b in (0..n).step_by(3) {
                for c in (0..n).step_by(5) {
                    if let (Some(ab), Some(bc), Some(ac)) = (
                        q.distance(&idx, a, b),
                        q.distance(&idx, b, c),
                        q.distance(&idx, a, c),
                    ) {
                        prop_assert!(ac <= ab + bc, "({}, {}, {}): {} > {} + {}", a, b, c, ac, ab, bc);
                    }
                }
            }
        }
    }

    /// On symmetric graphs (every edge paired with its reverse at equal
    /// weight) distances are symmetric.
    #[test]
    fn symmetric_graph_symmetric_distances(
        n in 3usize..16,
        edges in proptest::collection::vec((0usize..15, 0usize..15, 1u32..30), 5..40)
    ) {
        let mut b = GraphBuilder::new();
        for i in 0..n {
            b.add_node(Point::new((i as i32 % 5) * 30, (i as i32 / 5) * 30));
        }
        for i in 0..n as u32 {
            b.add_bidirectional_edge(i, (i + 1) % n as u32, 5);
        }
        for (u, v, w) in edges {
            let (u, v) = ((u % n) as u32, (v % n) as u32);
            if u != v {
                b.add_bidirectional_edge(u, v, w);
            }
        }
        let g = b.build();
        let idx = AhIndex::build(&g, &BuildConfig::default());
        let mut q = AhQuery::new();
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                prop_assert_eq!(q.distance(&idx, s, t), q.distance(&idx, t, s));
            }
        }
    }

    /// Grid predicate sanity over arbitrary points: separation level is
    /// consistent with the 3×3 cover predicate it is defined by.
    #[test]
    fn separation_level_consistency(
        px in -1000i32..1000, py in -1000i32..1000,
        qx in -1000i32..1000, qy in -1000i32..1000,
    ) {
        use ah_graph::BoundingBox;
        use ah_grid::GridHierarchy;
        let p = Point::new(px, py);
        let q0 = Point::new(qx, qy);
        let bb = BoundingBox::of([p, q0, Point::new(-1000, -1000), Point::new(1000, 1000)]);
        let grid = GridHierarchy::fit(bb, 12);
        match grid.separation_level(p, q0) {
            None => prop_assert!(grid.same_3x3_region(1, p, q0)),
            Some(j) => {
                prop_assert!(!grid.same_3x3_region(j, p, q0));
                if j < grid.levels() {
                    prop_assert!(grid.same_3x3_region(j + 1, p, q0));
                }
            }
        }
    }
}
