//! Registry-scale smoke test: the S0 benchmark dataset (≈1K nodes) with
//! sampled query pairs — large enough to exercise deep hierarchies, small
//! enough for the normal test run.

use ah_ch::{ChIndex, ChQuery};
use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_search::dijkstra_distance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn s0_dataset_sampled_equivalence() {
    let spec = ah_data::registry::by_name("S0").unwrap();
    let g = spec.build();
    assert!(g.num_nodes() > 900);

    let ah = AhIndex::build(&g, &BuildConfig::default());
    let ch = ChIndex::build(&g);
    let mut ahq = AhQuery::new();
    let mut chq = ChQuery::new();

    let mut rng = StdRng::seed_from_u64(515);
    let n = g.num_nodes() as u32;
    for _ in 0..300 {
        let s = rng.random_range(0..n);
        let t = rng.random_range(0..n);
        let want = dijkstra_distance(&g, s, t).map(|d| d.length);
        assert_eq!(ahq.distance(&ah, s, t), want, "AH ({s},{t})");
        assert_eq!(chq.distance(&ch, s, t), want, "CH ({s},{t})");
        if want.is_some() {
            let p = ahq.path(&ah, s, t).unwrap();
            p.verify(&g).unwrap();
            assert_eq!(Some(p.dist.length), want);
        }
    }
}

#[test]
fn ah_build_is_deterministic() {
    let spec = ah_data::registry::by_name("S0").unwrap();
    let g = spec.build();
    let a = AhIndex::build(&g, &BuildConfig::default());
    let b = AhIndex::build(&g, &BuildConfig::default());
    let (sa, sb) = (a.stats(), b.stats());
    assert_eq!(sa.level_histogram, sb.level_histogram);
    assert_eq!(sa.shortcuts, sb.shortcuts);
    assert_eq!(sa.elevating_arcs, sb.elevating_arcs);
    // And query results agree pairwise (spot check).
    let mut qa = AhQuery::new();
    let mut qb = AhQuery::new();
    for (s, t) in [(0u32, 500u32), (17, 901), (333, 12)] {
        assert_eq!(qa.distance(&a, s, t), qb.distance(&b, s, t));
    }
}

#[test]
fn workload_sets_cover_long_ranges_on_s0() {
    let spec = ah_data::registry::by_name("S0").unwrap();
    let g = spec.build();
    let sets = ah_workload::generate_query_sets(&g, 50, 3);
    // The top (long-distance) sets must be populated; the shortest-range
    // sets may legitimately be empty on synthetic data whose minimum edge
    // weight exceeds lmax/1024 (documented in EXPERIMENTS.md).
    assert!(!sets[9].pairs.is_empty(), "Q10 empty");
    assert!(!sets[8].pairs.is_empty(), "Q9 empty");
    assert!(!sets[7].pairs.is_empty(), "Q8 empty");
}
