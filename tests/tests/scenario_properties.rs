//! Property-based tests (proptest) on the scenario kernels: k-NN,
//! optimal detour (via) and batched distance tables over arbitrary
//! strongly connected graphs, checked against the shared brute-force
//! oracle (`ah_tests::oracle`) and against the kernels' own contracts
//! (`docs/SCENARIOS.md`):
//!
//! * k-NN results are sorted ascending by `(distance, poi)` and
//!   **dominance-free** — no excluded candidate beats an included one;
//! * the via answer never loses to `d(s,p) + d(p,t)` for *any*
//!   candidate `p`, and ties break toward the smaller POI id;
//! * matrix row `i` is exactly the one-to-many row of `sources[i]`.

use ah_graph::{Graph, GraphBuilder, NodeId, Point};
use ah_search::ScenarioEngine;
use ah_tests::oracle;
use proptest::prelude::*;

/// Strategy: a random strongly connected directed graph (bidirectional
/// ring plus random extra arcs) with a sampled candidate (POI) set.
fn arb_graph_and_pois() -> impl Strategy<Value = (Graph, Vec<NodeId>)> {
    (
        3usize..=24,
        proptest::collection::vec((0i32..400, 0i32..400, 1u32..50), 0..80),
        proptest::collection::vec(0usize..24, 1..10),
    )
        .prop_map(|(n, extra, poi_picks)| {
            let mut b = GraphBuilder::new();
            for i in 0..n {
                let x = ((i * 73) % 19) as i32 * 20;
                let y = ((i * 31) % 17) as i32 * 20;
                b.add_node(Point::new(x, y));
            }
            for i in 0..n as u32 {
                b.add_bidirectional_edge(i, (i + 1) % n as u32, 7);
            }
            for (xi, yi, w) in extra {
                let u = (xi as u32) % n as u32;
                let v = (yi as u32) % n as u32;
                if u != v {
                    b.add_edge(u, v, w);
                }
            }
            let mut pois: Vec<NodeId> =
                poi_picks.into_iter().map(|p| (p % n) as NodeId).collect();
            pois.sort_unstable();
            pois.dedup();
            (b.build(), pois)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// k-NN is sorted by `(distance, poi)`, contains no unreachable
    /// POIs, never exceeds `k`, is dominance-free, and bit-equals the
    /// brute-force oracle.
    #[test]
    fn knn_is_sorted_dominance_free_and_exact(
        (g, pois) in arb_graph_and_pois(),
        src_pick in 0usize..24,
        k in 1usize..6,
    ) {
        let src = (src_pick % g.num_nodes()) as NodeId;
        let mut engine = ScenarioEngine::new();
        let got = engine.knn(&g, src, &pois, k);
        prop_assert!(got.len() <= k);
        // Sorted strictly ascending by (distance, poi) — POIs are
        // distinct, so lexicographic order is strict.
        for w in got.windows(2) {
            prop_assert!(
                (w[0].1, w[0].0) < (w[1].1, w[1].0),
                "unsorted: {:?} before {:?}", w[0], w[1]
            );
        }
        // Dominance-free: every excluded reachable candidate is no
        // better than the worst included one (only checkable when the
        // result is full — a short result must mean the candidates ran
        // out).
        let included: std::collections::HashSet<NodeId> =
            got.iter().map(|&(p, _)| p).collect();
        if got.len() == k {
            let worst = (got[k - 1].1, got[k - 1].0);
            for &p in &pois {
                if included.contains(&p) {
                    continue;
                }
                if let Some(d) = oracle::distance(&g, src, p) {
                    prop_assert!(
                        (d, p) > worst,
                        "excluded POI {p} at {d} dominates included {worst:?}"
                    );
                }
            }
        } else {
            let reachable = pois
                .iter()
                .filter(|&&p| oracle::distance(&g, src, p).is_some())
                .count();
            prop_assert_eq!(got.len(), reachable.min(k));
        }
        prop_assert_eq!(got, oracle::knn(&g, src, &pois, k));
    }

    /// The via answer never loses to `d(s,p) + d(p,t)` for any sampled
    /// candidate, breaks total-ties toward the smaller POI id, and
    /// bit-equals the oracle (legs included).
    #[test]
    fn via_never_beaten_by_any_candidate(
        (g, pois) in arb_graph_and_pois(),
        s_pick in 0usize..24,
        t_pick in 0usize..24,
    ) {
        let n = g.num_nodes();
        let (s, t) = ((s_pick % n) as NodeId, (t_pick % n) as NodeId);
        let mut engine = ScenarioEngine::new();
        let got = engine.via(&g, s, t, &pois);
        for &p in &pois {
            let legs = oracle::distance(&g, s, p)
                .zip(oracle::distance(&g, p, t))
                .map(|(a, b)| a + b);
            let Some(total) = legs else { continue };
            let a = got.as_ref().expect("a routable candidate exists, via must answer");
            prop_assert!(
                (a.total, a.poi) <= (total, p),
                "via chose ({}, {}) but candidate {p} offers {total}",
                a.poi, a.total
            );
        }
        let want = oracle::via(&g, s, t, &pois);
        prop_assert_eq!(
            got.map(|a| (a.poi, a.total, a.to_poi, a.from_poi)),
            want.map(|a| (a.poi, a.total, a.to_poi, a.from_poi))
        );
    }

    /// Matrix row `i` equals the one-to-many row of `sources[i]`, and
    /// the whole table bit-equals the oracle.
    #[test]
    fn matrix_rows_are_one_to_many_rows(
        (g, pois) in arb_graph_and_pois(),
        src_picks in proptest::collection::vec(0usize..24, 1..5),
    ) {
        let n = g.num_nodes();
        let sources: Vec<NodeId> = src_picks.iter().map(|&p| (p % n) as NodeId).collect();
        let targets = &pois;
        let mut engine = ScenarioEngine::new();
        let table = engine.matrix(&g, &sources, targets);
        prop_assert_eq!(table.len(), sources.len());
        for (i, row) in table.iter().enumerate() {
            prop_assert_eq!(
                row,
                &engine.one_to_many(&g, sources[i], targets),
                "row {i} diverges from one-to-many of source {}", sources[i]
            );
        }
        prop_assert_eq!(table, oracle::matrix(&g, &sources, targets));
    }
}
