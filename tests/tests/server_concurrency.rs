//! The concurrent serving layer must be *invisible* in the answers: any
//! backend, any worker count, cache hot or cold — the distances coming out
//! of `ah_server` must be identical to a single-threaded `AhQuery` walking
//! the same pairs. These tests drive the paper's Q1–Q10 workload through
//! the worker pool and check exactly that.

use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_ch::ChIndex;
use ah_graph::NodeId;
use ah_server::{
    AhBackend, ChBackend, DijkstraBackend, DistanceBackend, QueryKind, Request, Server,
    ServerConfig,
};
use ah_workload::{generate_query_sets, QuerySet, TrafficSchedule};

fn test_graph() -> ah_graph::Graph {
    ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 14,
        height: 14,
        one_way: 0.15,
        seed: 99,
        ..Default::default()
    })
}

/// All Q-set pairs, flattened into distance requests.
fn qset_requests(sets: &[QuerySet]) -> Vec<Request> {
    sets.iter()
        .flat_map(|set| set.pairs.iter().copied())
        .enumerate()
        .map(|(i, (s, t))| Request::distance(i as u64, s, t))
        .collect()
}

/// Single-threaded ground truth for the same requests, via `AhQuery`.
fn ground_truth(idx: &AhIndex, requests: &[Request]) -> Vec<Option<u64>> {
    let mut q = AhQuery::new();
    requests.iter().map(|r| q.distance(idx, r.s, r.t)).collect()
}

#[test]
fn concurrent_server_matches_single_threaded_ah_for_all_backends() {
    let g = test_graph();
    let sets = generate_query_sets(&g, 40, 0xC0FFEE);
    let requests = qset_requests(&sets);
    assert!(requests.len() > 100, "workload must be non-trivial");

    let ah = AhIndex::build(&g, &BuildConfig::default());
    let ch = ChIndex::build(&g);
    let truth = ground_truth(&ah, &requests);

    let backends: Vec<(&str, Box<dyn DistanceBackend>)> = vec![
        ("AH", Box::new(AhBackend::new(&ah))),
        ("CH", Box::new(ChBackend::new(&ch))),
        ("Dijkstra", Box::new(DijkstraBackend::new(&g))),
    ];
    for (name, backend) in &backends {
        let server = Server::new(ServerConfig {
            workers: 4,
            queue_capacity: 64,
            cache_capacity: 8 * 1024,
            batch_size: 16,
            ..Default::default()
        });
        let report = server.run(backend.as_ref(), &requests);
        assert_eq!(report.responses.len(), requests.len(), "{name}");
        for (i, resp) in report.responses.iter().enumerate() {
            assert_eq!(resp.id, i as u64, "{name}: one response per request, in order");
            assert_eq!(
                resp.distance, truth[i],
                "{name}: request {i} ({} → {})",
                requests[i].s, requests[i].t
            );
        }
        assert_eq!(report.snapshot.queries, requests.len() as u64, "{name}");
    }
}

#[test]
fn worker_counts_do_not_change_answers() {
    let g = test_graph();
    let sets = generate_query_sets(&g, 25, 7);
    let requests = qset_requests(&sets);
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let backend = AhBackend::new(&ah);

    let reference = Server::new(ServerConfig::with_workers(1)).run(&backend, &requests);
    for workers in [2, 4, 8] {
        let report = Server::new(ServerConfig::with_workers(workers)).run(&backend, &requests);
        for (a, b) in reference.responses.iter().zip(&report.responses) {
            assert_eq!(a.distance, b.distance, "workers = {workers}, id = {}", a.id);
        }
    }
}

#[test]
fn cache_hits_equal_cache_misses() {
    let g = test_graph();
    let sets = generate_query_sets(&g, 30, 21);
    // Traffic with heavy repetition so the cache actually engages inside
    // a single run, too.
    let stream = TrafficSchedule::interactive(600, 0.5, 5).generate(&sets);
    let requests: Vec<Request> = stream
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| Request::distance(i as u64, s, t))
        .collect();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let backend = AhBackend::new(&ah);

    // Uncached reference: every answer computed by the index.
    let uncached = Server::new(ServerConfig {
        workers: 4,
        cache_capacity: 0,
        ..Default::default()
    })
    .run(&backend, &requests);
    assert_eq!(uncached.snapshot.cache_hits, 0);

    // Cached server, run twice: the second pass is ~all hits.
    let server = Server::new(ServerConfig {
        workers: 4,
        cache_capacity: 16 * 1024,
        ..Default::default()
    });
    let cold = server.run(&backend, &requests);
    let warm = server.run(&backend, &requests);
    assert!(
        cold.snapshot.cache_hits > 0,
        "repetitious traffic must hit within one run"
    );
    assert_eq!(
        warm.snapshot.cache_hits,
        requests.len() as u64,
        "second pass is fully cached"
    );
    for i in 0..requests.len() {
        assert_eq!(uncached.responses[i].distance, cold.responses[i].distance, "id {i}");
        assert_eq!(uncached.responses[i].distance, warm.responses[i].distance, "id {i}");
    }
}

#[test]
fn served_paths_are_valid_shortest_paths() {
    let g = test_graph();
    let sets = generate_query_sets(&g, 15, 13);
    let requests: Vec<Request> = sets
        .iter()
        .flat_map(|set| set.pairs.iter().copied())
        .enumerate()
        .map(|(i, (s, t))| Request::path(i as u64, s, t))
        .collect();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let backend = AhBackend::new(&ah);

    let report = Server::new(ServerConfig::with_workers(4)).run(&backend, &requests);
    let mut q = AhQuery::new();
    for (req, resp) in requests.iter().zip(&report.responses) {
        assert_eq!(req.kind, QueryKind::Path);
        let want = q.path(&ah, req.s, req.t).expect("Q-set pairs are connected");
        assert_eq!(resp.distance, Some(want.dist.length), "id {}", req.id);
        assert_eq!(resp.hops, Some(want.num_edges()), "id {}", req.id);
    }
}

/// Delta swaps racing a 4-worker query load: every answer served while
/// generations roll must equal Dijkstra on *some* published generation
/// (a batch pins exactly one), and once the last swap lands a fresh
/// batch answers only from the final graph — no stale cache entry
/// survives the swap.
#[test]
fn reloads_under_concurrent_load_never_serve_stale_answers() {
    use std::collections::{HashMap, HashSet};
    use std::sync::Arc;

    use ah_search::dijkstra_distance;
    use ah_server::{DeltaReloader, SnapshotServer};
    use ah_workload::WeightChurn;

    let g = test_graph();
    let plan = WeightChurn {
        rounds: 3,
        changes_per_round: 10,
        closure_fraction: 0.2,
        seed: 77,
    }
    .plan(&g, 0);

    // Every graph the server may legitimately answer from: the base and
    // the state after each churn round.
    let mut versions = vec![g.clone()];
    for round in &plan.rounds {
        versions.push(round.delta.apply(versions.last().unwrap()).unwrap().graph);
    }

    let sets = generate_query_sets(&g, 15, 3);
    let pairs: Vec<(NodeId, NodeId)> =
        sets.iter().flat_map(|s| s.pairs.iter().copied()).collect();
    let admissible: HashMap<(NodeId, NodeId), HashSet<Option<u64>>> = pairs
        .iter()
        .map(|&(s, t)| {
            let answers = versions
                .iter()
                .map(|v| dijkstra_distance(v, s, t).map(|d| d.length))
                .collect();
            ((s, t), answers)
        })
        .collect();

    let ah = Arc::new(AhIndex::build(&g, &BuildConfig::default()));
    let snap = Arc::new(SnapshotServer::new(ah, ServerConfig::with_workers(4)));
    let reloader = Arc::new(DeltaReloader::new(
        Arc::clone(&snap),
        g.clone(),
        BuildConfig::default(),
    ));

    std::thread::scope(|scope| {
        for c in 0..4u64 {
            let snap = Arc::clone(&snap);
            let pairs = &pairs;
            let admissible = &admissible;
            scope.spawn(move || {
                for iter in 0..6u64 {
                    let requests: Vec<Request> = pairs
                        .iter()
                        .enumerate()
                        .map(|(i, &(s, t))| {
                            Request::distance(c * 100_000 + iter * 1_000 + i as u64, s, t)
                        })
                        .collect();
                    let report = snap.run(&requests);
                    for (req, resp) in requests.iter().zip(&report.responses) {
                        assert!(
                            admissible[&(req.s, req.t)].contains(&resp.distance),
                            "({}, {}) answered {:?} — not any published generation",
                            req.s,
                            req.t,
                            resp.distance
                        );
                    }
                }
            });
        }
        // Roll the three rounds out while the clients hammer.
        let rel = Arc::clone(&reloader);
        let rounds = &plan.rounds;
        scope.spawn(move || {
            for round in rounds {
                std::thread::sleep(std::time::Duration::from_millis(3));
                rel.reload(round.delta.clone()).expect("chained delta applies");
            }
        });
    });

    assert_eq!(snap.generation(), plan.rounds.len() as u64);
    assert_eq!(reloader.swaps(), plan.rounds.len() as u64);

    // Post-swap strictness: only the final graph may answer now.
    let requests: Vec<Request> = pairs
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| Request::distance(i as u64, s, t))
        .collect();
    let report = snap.run(&requests);
    for (req, resp) in requests.iter().zip(&report.responses) {
        assert_eq!(
            resp.distance,
            dijkstra_distance(&plan.final_graph, req.s, req.t).map(|d| d.length),
            "({}, {}) still answers from a retired generation",
            req.s,
            req.t
        );
    }
}

#[test]
fn mixed_distance_and_path_traffic_stays_consistent() {
    let g = test_graph();
    let n = g.num_nodes() as NodeId;
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let backend = AhBackend::new(&ah);
    let requests: Vec<Request> = (0..300u64)
        .map(|id| {
            let s = (id as NodeId * 11 + 1) % n;
            let t = (id as NodeId * 29 + 17) % n;
            if id % 3 == 0 {
                Request::path(id, s, t)
            } else {
                Request::distance(id, s, t)
            }
        })
        .collect();
    let truth = ground_truth(&ah, &requests);
    let report = Server::new(ServerConfig::with_workers(4)).run(&backend, &requests);
    for (i, resp) in report.responses.iter().enumerate() {
        assert_eq!(resp.distance, truth[i], "id {i}");
    }
    // Path requests never probe the cache, so only distance queries may
    // appear in the hit/miss counters.
    let distance_requests = requests
        .iter()
        .filter(|r| r.kind == QueryKind::Distance)
        .count() as u64;
    assert_eq!(
        report.snapshot.cache_hits + report.snapshot.cache_misses,
        distance_requests
    );
}
