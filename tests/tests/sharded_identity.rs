//! Cross-shard exactness: sharded answers must be **bit-equal** to the
//! unsharded `AhQuery` — itself pinned against the shared brute-force
//! oracle (`ah_tests::oracle`) — on randomized Q1–Q10 workloads,
//! including the pairs whose endpoints straddle two or more shards, the
//! ones that exercise boundary composition.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ah_tests::oracle;

use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_server::{
    AhBackend, Request, Server, ServerConfig, ShardedServer, ShardedServerConfig,
};
use ah_shard::{ShardConfig, ShardedIndex, ShardedQuery};
use ah_workload::{generate_query_sets, TrafficSchedule};

fn network() -> ah_graph::Graph {
    ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 20,
        height: 20,
        seed: 77,
        ..Default::default()
    })
}

fn sharded(g: &ah_graph::Graph, shards: usize) -> (Arc<AhIndex>, Arc<ShardedIndex>) {
    let global = Arc::new(AhIndex::build(g, &BuildConfig::default()));
    let idx = ShardedIndex::from_global(
        g,
        global.clone(),
        &ShardConfig {
            shards,
            ..Default::default()
        },
    );
    (global, Arc::new(idx))
}

/// Q1–Q10 identity: every pair of every distance-stratified set answers
/// identically, and the workload genuinely straddles shards.
#[test]
fn q1_to_q10_sharded_equals_unsharded() {
    let g = network();
    let sets = generate_query_sets(&g, 40, 2013);

    // Ground truth first: the unsharded AH index agrees with the
    // brute-force oracle on the whole workload (one Dijkstra row per
    // distinct source).
    {
        let (global, _) = sharded(&g, 2);
        let mut gq = AhQuery::new();
        let mut rows: HashMap<u32, Vec<Option<u64>>> = HashMap::new();
        for set in &sets {
            for &(s, t) in &set.pairs {
                let row = rows.entry(s).or_insert_with(|| oracle::dists_from(&g, s));
                assert_eq!(
                    gq.distance(&global, s, t),
                    row[t as usize],
                    "AH vs oracle ({s},{t})"
                );
            }
        }
    }

    for &k in &[2usize, 4, 7] {
        let (global, idx) = sharded(&g, k);
        let mut sq = ShardedQuery::new();
        let mut gq = AhQuery::new();
        let mut shard_pairs: HashSet<(u16, u16)> = HashSet::new();
        let mut straddling = 0usize;
        for set in &sets {
            for &(s, t) in &set.pairs {
                let a = idx.shard_of(s);
                let b = idx.shard_of(t);
                if a != b {
                    straddling += 1;
                    shard_pairs.insert((a.min(b), a.max(b)));
                }
                assert_eq!(
                    sq.distance(&idx, s, t),
                    gq.distance(&global, s, t),
                    "k={k} Q{} ({s},{t})",
                    set.index
                );
            }
        }
        // The long-range sets must produce pairs that straddle shards —
        // and, when more than two shards exist, pairs spanning at least
        // two *distinct* shard pairs (2+ shards involved beyond one
        // boundary) — or the suite is not testing composition.
        assert!(straddling > 0, "k={k}: no cross-shard pairs in Q1–Q10");
        assert!(
            shard_pairs.len() >= if k > 2 { 2 } else { 1 },
            "k={k}: cross-shard pairs span only {:?}",
            shard_pairs
        );
    }
}

/// The `ShardedServer` serves an interleaved Q1–Q10 traffic stream with
/// answers bit-equal to a plain `Server` over the unsharded index.
#[test]
fn sharded_server_traffic_identity() {
    let g = network();
    let sets = generate_query_sets(&g, 40, 99);
    let stream = TrafficSchedule::interactive(1200, 0.3, 99).generate(&sets);
    let requests: Vec<Request> = stream
        .iter()
        .enumerate()
        .map(|(i, &(s, t))| Request::distance(i as u64, s, t))
        .collect();

    let (global, idx) = sharded(&g, 4);
    let sharded_server =
        ShardedServer::new(idx.clone(), ShardedServerConfig::with_workers_per_shard(2));
    let got = sharded_server.run(&requests);
    assert!(got.cross_shard > 0, "traffic must cross shards");

    let unsharded = Server::new(ServerConfig::with_workers(4));
    let want = unsharded.run(&AhBackend::new(&global), &requests);
    assert_eq!(got.responses.len(), want.responses.len());
    for (a, b) in got.responses.iter().zip(&want.responses) {
        assert_eq!((a.id, a.distance), (b.id, b.distance), "req {}", a.id);
    }
    // Lane accounting covers the whole stream.
    assert_eq!(
        got.lanes.iter().map(|l| l.requests).sum::<usize>(),
        requests.len()
    );
    assert_eq!(got.same_shard + got.cross_shard, requests.len());
}

/// Snapshot round trip preserves answers: save the sharded index, load
/// it back, and serve the same randomized workload identically.
#[test]
fn sharded_snapshot_roundtrip_identity() {
    use ah_store::{Snapshot, SnapshotContents};
    let g = network();
    let (_, idx) = sharded(&g, 4);
    let path = std::env::temp_dir().join(format!(
        "ah_tests_sharded_identity_{}.snap",
        std::process::id()
    ));
    Snapshot::write(&path, SnapshotContents::new().graph(&g).sharded(&idx)).unwrap();
    let loaded = Arc::new(Snapshot::load_sharded(&path).unwrap());
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.certified(), idx.certified());
    assert_eq!(loaded.stats(), idx.stats());
    let sets = generate_query_sets(&g, 25, 5);
    let mut q1 = ShardedQuery::new();
    let mut q2 = ShardedQuery::new();
    for set in &sets {
        for &(s, t) in &set.pairs {
            assert_eq!(q2.distance(&loaded, s, t), q1.distance(&idx, s, t));
        }
    }
}

/// An uncertified build (border cap exceeded) must still answer every
/// query exactly, via the global fallback.
#[test]
fn uncertified_fallback_identity() {
    let g = network();
    let global = Arc::new(AhIndex::build(&g, &BuildConfig::default()));
    let idx = ShardedIndex::from_global(
        &g,
        global.clone(),
        &ShardConfig {
            shards: 4,
            max_border_nodes: 1, // far below any real border count
            ..Default::default()
        },
    );
    assert!(!idx.certified());
    let sets = generate_query_sets(&g, 20, 17);
    let mut sq = ShardedQuery::new();
    let mut gq = AhQuery::new();
    for set in &sets {
        for &(s, t) in &set.pairs {
            assert_eq!(sq.distance(&idx, s, t), gq.distance(&global, s, t));
        }
    }
}

/// Path requests through the sharded backend return verified shortest
/// paths whose lengths match the composed distances.
#[test]
fn sharded_paths_verify_and_match_distances() {
    let g = network();
    let (_, idx) = sharded(&g, 4);
    let sets = generate_query_sets(&g, 10, 31);
    let mut q = ShardedQuery::new();
    for set in sets.iter().skip(5) {
        // long-range sets: likeliest to cross shards
        for &(s, t) in set.pairs.iter().take(5) {
            let d = q.distance(&idx, s, t);
            if let Some(p) = q.path(&idx, s, t) {
                p.verify(&g).unwrap();
                assert_eq!(Some(p.dist.length), d);
            } else {
                assert_eq!(d, None);
            }
        }
    }
}
