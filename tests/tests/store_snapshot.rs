//! Snapshot persistence: round-trip identity and failure-path coverage.
//!
//! The contract under test (ISSUE 3 acceptance criteria):
//!
//! * `Snapshot::load(Snapshot::write(idx))` answers **every** Q1–Q10
//!   query bit-identically (including the nuance tie-break component) to
//!   the index it was written from, for both AH and CH;
//! * every corruption mode — truncation, flipped payload byte, wrong
//!   magic, future version, damaged section table — surfaces as a typed
//!   [`SnapshotError`], never a panic or a silently wrong index.

use ah_ch::{ChIndex, ChQuery};
use ah_core::{AhIndex, AhQuery, BuildConfig};
use ah_store::{crc64, Snapshot, SnapshotContents, SnapshotError, VERSION};

fn road_network() -> ah_graph::Graph {
    ah_data::hierarchical_grid(&ah_data::HierarchicalGridConfig {
        width: 12,
        height: 12,
        one_way: 0.15,
        seed: 0xC0FFEE,
        ..Default::default()
    })
}

fn tmp(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ah_snapshot_{name}_{}.snap", std::process::id()))
}

/// The tentpole guarantee: a reloaded snapshot is indistinguishable from
/// the index it was written from, on every one of the paper's ten
/// distance-stratified query sets.
#[test]
fn roundtrip_is_bit_identical_on_q1_to_q10() {
    let g = road_network();
    let query_sets = ah_workload::generate_query_sets(&g, 25, 0xF16);
    assert_eq!(query_sets.len(), 10, "Q1..Q10");

    let ah = AhIndex::build(&g, &BuildConfig::default());
    let ch = ChIndex::build(&g);

    let path = tmp("roundtrip");
    Snapshot::write(&path, SnapshotContents::new().graph(&g).ah(&ah).ch(&ch)).unwrap();
    let loaded = Snapshot::load(&path).unwrap();
    let g2 = loaded.graph.expect("graph section");
    let ah2 = loaded.ah.expect("ah section");
    let ch2 = loaded.ch.expect("ch section");

    // Structural identity.
    assert_eq!(g2.num_nodes(), g.num_nodes());
    assert_eq!(g2.num_edges(), g.num_edges());
    assert_eq!(ah2.stats(), ah.stats());
    assert_eq!(ah2.size_bytes(), ah.size_bytes());
    assert_eq!(ch2.num_shortcuts(), ch.num_shortcuts());
    assert_eq!(ch2.order(), ch.order());

    // Behavioural identity: every pair of every query set, full Dist
    // (length *and* nuance) so even tie-break bookkeeping must survive.
    let mut ahq_a = AhQuery::new();
    let mut ahq_b = AhQuery::new();
    let mut chq_a = ChQuery::new();
    let mut chq_b = ChQuery::new();
    let mut checked = 0usize;
    for set in &query_sets {
        for &(s, t) in &set.pairs {
            assert_eq!(
                ahq_b.distance_full(&ah2, s, t),
                ahq_a.distance_full(&ah, s, t),
                "AH Q{} ({s},{t})",
                set.index
            );
            assert_eq!(
                chq_b.distance_full(&ch2, s, t),
                chq_a.distance_full(&ch, s, t),
                "CH Q{} ({s},{t})",
                set.index
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "query sets were non-empty");

    // Paths unpack identically through the reloaded elevating chains.
    for set in query_sets.iter().step_by(3) {
        for &(s, t) in set.pairs.iter().take(5) {
            let want = ahq_a.path(&ah, s, t);
            let got = ahq_b.path(&ah2, s, t);
            match (want, got) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.nodes, b.nodes, "Q{} ({s},{t})", set.index);
                    b.verify(&g).unwrap();
                }
                (None, None) => {}
                _ => panic!("path reachability changed for ({s},{t})"),
            }
        }
    }
    std::fs::remove_file(&path).ok();
}

/// A snapshot of the *graph* rebuilds an index equivalent to one built
/// from the original — the restart path for cold standbys that persist
/// only the network.
#[test]
fn graph_section_supports_rebuild() {
    let g = road_network();
    let path = tmp("graph_only");
    Snapshot::write(&path, SnapshotContents::new().graph(&g)).unwrap();
    let g2 = Snapshot::load(&path).unwrap().require_graph().unwrap();
    for v in g.node_ids() {
        assert_eq!(g2.out_edges(v), g.out_edges(v));
        assert_eq!(g2.in_edges(v), g.in_edges(v));
        assert_eq!(g2.coord(v), g.coord(v));
    }
    std::fs::remove_file(&path).ok();
}

fn small_snapshot_bytes() -> Vec<u8> {
    let g = ah_data::fixtures::lattice(6, 6, 12);
    let ah = AhIndex::build(&g, &BuildConfig::default());
    Snapshot::to_bytes(SnapshotContents::new().graph(&g).ah(&ah))
}

#[test]
fn truncated_file_is_typed_at_every_cut() {
    let bytes = small_snapshot_bytes();
    // Exhaustive near the framing-sensitive head, sampled over the body.
    let cuts = (0..256.min(bytes.len()))
        .chain((256..bytes.len()).step_by(97))
        .chain([bytes.len() - 1]);
    for cut in cuts {
        match Snapshot::from_bytes(&bytes[..cut]) {
            Err(
                SnapshotError::Truncated { .. }
                | SnapshotError::BadMagic
                | SnapshotError::TableChecksumMismatch
                | SnapshotError::SectionChecksumMismatch { .. },
            ) => {}
            Err(e) => panic!("cut {cut}: unexpected error kind {e}"),
            Ok(_) => panic!("cut {cut}: truncated snapshot loaded"),
        }
    }
}

#[test]
fn flipped_payload_byte_is_checksum_mismatch() {
    let bytes = small_snapshot_bytes();
    // Flip one byte well inside the last section's payload.
    let mut corrupt = bytes.clone();
    let at = corrupt.len() - 16;
    corrupt[at] ^= 0x20;
    assert!(matches!(
        Snapshot::from_bytes(&corrupt),
        Err(SnapshotError::SectionChecksumMismatch { .. })
    ));
}

#[test]
fn every_single_byte_flip_is_detected() {
    // Not just detected *somewhere*: no byte of the file is uncovered by
    // a checksum, so any single flip must fail the load with a typed
    // error (which one depends on where the flip lands).
    let g = ah_data::fixtures::ring(10);
    let bytes = Snapshot::to_bytes(SnapshotContents::new().graph(&g));
    for at in (0..bytes.len()).step_by(7) {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x01;
        assert!(
            Snapshot::from_bytes(&corrupt).is_err(),
            "flip at byte {at} went undetected"
        );
    }
}

#[test]
fn wrong_magic_is_bad_magic() {
    let mut bytes = small_snapshot_bytes();
    bytes[..8].copy_from_slice(b"NOTSNAP!");
    assert!(matches!(
        Snapshot::from_bytes(&bytes),
        Err(SnapshotError::BadMagic)
    ));
    // An empty or foreign file hits the same typed error, not a panic.
    assert!(matches!(
        Snapshot::from_bytes(b""),
        Err(SnapshotError::Truncated { .. })
    ));
    assert!(matches!(
        Snapshot::from_bytes(b"p 1234 graph file, definitely not binary"),
        Err(SnapshotError::BadMagic)
    ));
}

#[test]
fn future_version_is_refused_with_found_version() {
    let mut bytes = small_snapshot_bytes();
    let future = VERSION + 7;
    bytes[8..10].copy_from_slice(&future.to_le_bytes());
    // Re-seal the header/table checksum so the version check itself is
    // exercised (a real future writer would produce a valid table).
    let count = u16::from_le_bytes(bytes[10..12].try_into().unwrap()) as usize;
    let table_end = 16 + 32 * count;
    let crc = crc64(&bytes[..table_end]).to_le_bytes();
    bytes[table_end..table_end + 8].copy_from_slice(&crc);
    match Snapshot::from_bytes(&bytes) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, future);
            assert_eq!(supported, VERSION);
        }
        Err(e) => panic!("unexpected error kind: {e}"),
        Ok(_) => panic!("future version loaded"),
    }
}

/// The format-v3 labels section round-trips through a real file with
/// bit-identical structure and answers.
#[test]
fn labels_section_roundtrips_through_write_and_load() {
    use ah_labels::LabelIndex;

    let g = road_network();
    let ch = ChIndex::build(&g);
    let labels = LabelIndex::build(&g, ch.order());

    let path = tmp("labels_roundtrip");
    Snapshot::write(&path, SnapshotContents::new().graph(&g).labels(&labels)).unwrap();
    let loaded = Snapshot::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let labels2 = loaded.require_labels().unwrap();

    assert_eq!(labels2.stats(), labels.stats());
    assert_eq!(labels2.raw_parts(), labels.raw_parts());
    let sets = ah_workload::generate_query_sets(&g, 20, 0x1AB);
    for set in &sets {
        for &(s, t) in &set.pairs {
            assert_eq!(
                labels2.distance_full(s, t),
                labels.distance_full(s, t),
                "Q{} ({s},{t})",
                set.index
            );
        }
    }
}

fn labels_snapshot_bytes() -> (Vec<u8>, std::ops::Range<usize>) {
    use ah_labels::LabelIndex;
    let g = ah_data::fixtures::lattice(6, 6, 12);
    let ch = ChIndex::build(&g);
    let labels = LabelIndex::build(&g, ch.order());
    let bytes = Snapshot::to_bytes(SnapshotContents::new().labels(&labels));
    // Locate the labels payload via the section table: entries start at
    // offset 16, each `tag[8] | offset u64 | len u64 | crc u64`.
    let count = u16::from_le_bytes(bytes[10..12].try_into().unwrap()) as usize;
    let payload = (0..count)
        .map(|i| 16 + 32 * i)
        .find(|&e| &bytes[e..e + 8] == b"labels\0\0")
        .map(|e| {
            let off = u64::from_le_bytes(bytes[e + 8..e + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[e + 16..e + 24].try_into().unwrap()) as usize;
            off..off + len
        })
        .expect("labels section present");
    (bytes, payload)
}

/// Corruption inside the labels payload is a typed error, never a panic
/// or a silently wrong labeling: flips land on the section checksum;
/// cuts land on truncation/framing errors.
#[test]
fn corrupted_labels_payload_is_typed() {
    let (bytes, payload) = labels_snapshot_bytes();
    for at in payload.clone().step_by(11) {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x40;
        assert!(
            matches!(
                Snapshot::from_bytes(&corrupt),
                Err(SnapshotError::SectionChecksumMismatch { .. })
            ),
            "flip at labels byte {at} not a checksum mismatch"
        );
    }
    for cut in [payload.start + 8, payload.start + payload.len() / 2] {
        assert!(
            Snapshot::from_bytes(&bytes[..cut]).is_err(),
            "cut at {cut} inside the labels payload loaded"
        );
    }
}

/// A structurally forged labels payload — valid checksum, nonsense
/// contents — is refused as `Malformed`, not trusted. Forgery here:
/// re-sealing the section CRC and table after scrambling the entry
/// area, the strongest corruption the container itself cannot catch.
#[test]
fn forged_labels_payload_is_malformed() {
    let (bytes, payload) = labels_snapshot_bytes();
    let count = u16::from_le_bytes(bytes[10..12].try_into().unwrap()) as usize;
    // Swap the node count for a lie (payload starts with `u64 n`).
    let mut forged = bytes.clone();
    forged[payload.start..payload.start + 8].copy_from_slice(&9999u64.to_le_bytes());
    // Re-seal: section CRC in the table entry, then the table CRC.
    let entry = (0..count)
        .map(|i| 16 + 32 * i)
        .find(|&e| &forged[e..e + 8] == b"labels\0\0")
        .unwrap();
    let crc = crc64(&forged[payload.clone()]).to_le_bytes();
    forged[entry + 24..entry + 32].copy_from_slice(&crc);
    let table_end = 16 + 32 * count;
    let tcrc = crc64(&forged[..table_end]).to_le_bytes();
    forged[table_end..table_end + 8].copy_from_slice(&tcrc);
    match Snapshot::from_bytes(&forged) {
        Err(SnapshotError::Malformed { .. }) => {}
        Err(e) => panic!("unexpected error kind: {e}"),
        Ok(_) => panic!("forged labels payload loaded"),
    }
}

/// Version floor: a labels-free v2 image (what a pre-labels writer
/// produced) still loads and decodes under the v3 reader.
#[test]
fn v2_image_without_labels_still_loads() {
    let mut bytes = small_snapshot_bytes();
    bytes[8..10].copy_from_slice(&2u16.to_le_bytes());
    let count = u16::from_le_bytes(bytes[10..12].try_into().unwrap()) as usize;
    let table_end = 16 + 32 * count;
    let crc = crc64(&bytes[..table_end]).to_le_bytes();
    bytes[table_end..table_end + 8].copy_from_slice(&crc);
    let loaded = Snapshot::from_bytes(&bytes).expect("v2 image refused");
    assert!(loaded.graph.is_some() && loaded.ah.is_some());
    assert!(loaded.labels.is_none(), "v2 image grew a labels section");
}

/// End-to-end restart: a server brought up from a snapshot serves the
/// same answers as one built from source data.
#[test]
fn server_restart_from_snapshot_matches_fresh_build() {
    use ah_server::{AhBackend, Request, Server, ServerConfig};

    let g = road_network();
    let ah = AhIndex::build(&g, &BuildConfig::default());
    let path = tmp("server_restart");
    Snapshot::write(&path, SnapshotContents::new().ah(&ah)).unwrap();

    let n = g.num_nodes() as u32;
    let requests: Vec<Request> = (0..200u64)
        .map(|i| Request::distance(i, (i as u32 * 13 + 1) % n, (i as u32 * 31 + 7) % n))
        .collect();

    let fresh = Server::new(ServerConfig::with_workers(2));
    let want = fresh.run(&AhBackend::new(&ah), &requests);

    let restarted = Server::from_snapshot(&path, ServerConfig::with_workers(2)).unwrap();
    let got = restarted.run(&requests);
    for (a, b) in want.responses.iter().zip(&got.responses) {
        assert_eq!((a.id, a.distance), (b.id, b.distance));
    }
    std::fs::remove_file(&path).ok();
}
