//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset used by `crates/bench/benches/*`:
//! [`Criterion`] with `bench_function` / `benchmark_group` /
//! `sample_size` / `measurement_time`, [`BenchmarkGroup`] with
//! `bench_function` / `bench_with_input` / `finish`, [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Unlike the real criterion it performs a single quick timing pass
//! per benchmark (bounded warm-up, then up to `sample_size` timed
//! iterations capped at ~200 ms wall clock) and prints a one-line
//! mean. There is no statistical analysis, plotting, or baseline
//! comparison — the goal is that `cargo bench` compiles, runs every
//! benchmark body, and finishes in seconds rather than minutes.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, mirroring
/// `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus a parameter label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<F: fmt::Display, P: fmt::Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: usize,
    mean: Option<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly and record the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration so lazily-initialized state does not
        // dominate the measurement.
        black_box(routine());
        let cap = Duration::from_millis(200);
        let start = Instant::now();
        let mut done = 0usize;
        while done < self.samples && start.elapsed() < cap {
            black_box(routine());
            done += 1;
        }
        self.mean = Some(start.elapsed() / done.max(1) as u32);
    }
}

fn run_one(group: Option<&str>, id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let mut b = Bencher {
        samples,
        mean: None,
    };
    f(&mut b);
    match b.mean {
        Some(mean) => println!("bench: {label:<40} {mean:>12.2?}/iter"),
        None => println!("bench: {label:<40} (no measurement)"),
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(Some(&self.name), &id.to_string(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(Some(&self.name), &id.to_string(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    sample_size: Option<usize>,
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = Some(n.max(1));
        self
    }

    pub fn measurement_time(self, _dur: Duration) -> Self {
        self
    }

    fn samples(&self) -> usize {
        self.sample_size.unwrap_or(10)
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(None, id, self.samples(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.samples(),
            criterion: self,
        }
    }
}

/// Mirrors `criterion_group!`: both the simple list form and the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Mirrors `criterion_main!`: emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs >= 1);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let input = vec![1, 2, 3];
        group.bench_with_input(BenchmarkId::new("sum", "v"), &input, |b, v| {
            b.iter(|| v.iter().sum::<i32>())
        });
        group.finish();
    }
}
