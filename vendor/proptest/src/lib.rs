//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//! header), [`Strategy`] with [`Strategy::prop_map`], integer-range
//! and tuple strategies, [`collection::vec`], and the
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Each test body runs `cases` times against inputs drawn from a
//! deterministic per-case seed. Unlike the real proptest there is no
//! shrinking and no persisted failure seeds — a failing case panics
//! with the normal assert message, and the fixed seeding makes it
//! reproducible by rerunning the test.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod test_runner {
    use super::*;

    /// Run configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Drives the per-case RNG. Each case reseeds deterministically so
    /// failures reproduce without persisted seed files.
    pub struct TestRunner {
        config: Config,
        case: u64,
        rng: StdRng,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            TestRunner {
                config,
                case: 0,
                rng: StdRng::seed_from_u64(0x5EED),
            }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        pub fn begin_case(&mut self) {
            self.rng = StdRng::seed_from_u64(0x5EED_0000 + self.case);
            self.case += 1;
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }
    }
}

/// A value generator, mirroring `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Mirrors `proptest::strategy::Just`: always yields a clone of the
/// wrapped value. The building block `prop_oneof!` arms use for
/// boundary constants.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

pub mod strategy {
    //! Combinator strategies that need runtime dispatch.

    use super::*;

    /// Weighted union over same-valued strategies, produced by
    /// [`prop_oneof!`](crate::prop_oneof). Each case picks one arm with
    /// probability proportional to its weight.
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Fn(&mut StdRng) -> V>)>,
        total: u32,
    }

    impl<V> Union<V> {
        #[doc(hidden)]
        pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut StdRng) -> V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            let mut pick = rand::Rng::random_range(rng, 0..self.total);
            for (w, arm) in &self.arms {
                if pick < *w {
                    return arm(rng);
                }
                pick -= *w;
            }
            unreachable!("pick is bounded by the weight total")
        }
    }
}

#[doc(hidden)]
pub mod __rng {
    pub use rand::rngs::StdRng;
}

/// Mirrors `prop_oneof!`: picks one of several strategies per case,
/// uniformly (`prop_oneof![a, b]`) or by weight
/// (`prop_oneof![3 => a, 1 => b]`). All arms must share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((
                $weight as u32,
                {
                    let s = $strat;
                    Box::new(move |rng: &mut $crate::__rng::StdRng| {
                        $crate::Strategy::generate(&s, rng)
                    }) as Box<dyn Fn(&mut $crate::__rng::StdRng) -> _>
                },
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    use super::*;

    /// Strategy for a `Vec` whose length is drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec` for `Range<usize>` sizes.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest, Just, Strategy};
}

/// Mirrors `prop_assert!`: plain assertion (no shrink-and-replay).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Mirrors `prop_assert_eq!`: plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Mirrors the `proptest!` test-block macro: expands each
/// `fn name(pat in strategy, ...) { body }` into a `#[test]` that runs
/// the body for `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        // Callers write `#[test]` on each fn themselves (as with the
        // real proptest), so the attribute list is re-emitted as-is.
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            // Strategies are built once, outside the case loop; the
            // tuple-of-strategies impl turns them into one generator.
            let strategy = ($({ $strat },)+);
            for _case in 0..runner.cases() {
                runner.begin_case();
                let ($($pat,)+) = $crate::Strategy::generate(&strategy, runner.rng());
                $body
            }
        }
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(a in 0usize..10, b in -5i32..=5) {
            prop_assert!(a < 10);
            prop_assert!((-5..=5).contains(&b));
        }

        #[test]
        fn vec_and_map_compose(
            v in crate::collection::vec((0u32..100, 1u32..4), 0..20).prop_map(|pairs| {
                pairs.into_iter().map(|(x, y)| x * y).collect::<Vec<_>>()
            })
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 400));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn oneof_draws_only_from_its_arms(x in prop_oneof![Just(0u32), Just(7u32), 100u32..200]) {
            prop_assert!(x == 0u32 || x == 7 || (100u32..200).contains(&x));
        }
    }

    #[test]
    fn weighted_oneof_respects_weights() {
        use crate::test_runner::{Config, TestRunner};
        use crate::Strategy;
        let s = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut runner = TestRunner::new(Config::default());
        runner.begin_case();
        let hits = (0..1000).filter(|_| s.generate(runner.rng())).count();
        // 9:1 odds; anything near-uniform would sit around 500.
        assert!(hits > 750, "weighted arm drawn only {hits}/1000 times");
    }

    #[test]
    fn deterministic_between_runners() {
        use crate::test_runner::{Config, TestRunner};
        use crate::Strategy;
        let mut r1 = TestRunner::new(Config::default());
        let mut r2 = TestRunner::new(Config::default());
        r1.begin_case();
        r2.begin_case();
        let s = 0u64..1000;
        assert_eq!(s.generate(r1.rng()), s.generate(r2.rng()));
    }
}
