//! Offline stand-in for the `rand` crate, implementing the subset of
//! the rand 0.9 API this workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::random_range`] over integer
//! `Range`/`RangeInclusive` bounds, and [`Rng::random_bool`].
//!
//! The generator is SplitMix64 — deterministic, fast, and good enough
//! for workload generation and randomized tests. It is **not** the
//! same stream as the real `StdRng` (ChaCha12), so seeds produce
//! different sequences than upstream rand; everything in this
//! workspace only relies on determinism, not on a specific stream.

use std::ops::{Range, RangeInclusive};

/// A seedable RNG, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types that [`Rng::random_range`] can sample.
pub trait SampleUniform: Copy {
    fn to_i128(self) -> i128;
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_i128(self) -> i128 {
                self as i128
            }
            #[inline]
            fn from_i128(v: i128) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Ranges that can be sampled from, mirroring `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Inclusive `(low, high)` bounds, or `None` if the range is empty.
    fn bounds(&self) -> Option<(i128, i128)>;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn bounds(&self) -> Option<(i128, i128)> {
        let (lo, hi) = (self.start.to_i128(), self.end.to_i128() - 1);
        (lo <= hi).then_some((lo, hi))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds(&self) -> Option<(i128, i128)> {
        let (lo, hi) = (self.start().to_i128(), self.end().to_i128());
        (lo <= hi).then_some((lo, hi))
    }
}

/// The subset of `rand::Rng` used by this workspace.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range. Panics on empty ranges,
    /// like the real `rand`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (lo, hi) = range
            .bounds()
            .expect("cannot sample empty range");
        let span = (hi - lo + 1) as u128;
        // Rejection sampling: accept only draws below the largest
        // multiple of `span`, so the reduction is bias-free.
        let zone = ((u64::MAX as u128 + 1) / span) * span;
        loop {
            let v = self.next_u64() as u128;
            if v < zone {
                return T::from_i128(lo + (v % span) as i128);
            }
        }
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // 53 high bits give a uniform f64 in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let u: usize = rng.random_range(0..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn bool_probabilities_degenerate() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
