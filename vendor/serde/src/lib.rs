//! Offline stand-in for `serde`.
//!
//! Exposes `Serialize` / `Deserialize` as empty marker traits with
//! blanket impls, and re-exports the no-op derive macros from the
//! sibling `serde_derive` stub, so `use serde::{Serialize,
//! Deserialize}` and `#[derive(Serialize, Deserialize)]` both compile
//! unchanged. No actual (de)serialization is provided; replace with
//! the real serde when a wire format is needed.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}
