//! Offline stand-in for `serde_derive`.
//!
//! Provides `#[derive(Serialize)]` / `#[derive(Deserialize)]` that
//! expand to nothing, so types can keep their serde derives in source
//! while building without the real serde. The traits themselves live
//! in the sibling `vendor/serde` stub as empty marker traits with
//! blanket impls, so the empty expansion here is sufficient.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
